#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "asp/compiled_stateless.h"
#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "event/expr_program.h"
#include "runtime/bounded_queue.h"
#include "runtime/channel.h"
#include "runtime/executor.h"
#include "runtime/job_graph.h"
#include "runtime/rate_limited_source.h"
#include "runtime/sink.h"
#include "runtime/spsc_ring.h"
#include "runtime/threaded_executor.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;

std::vector<SimpleEvent> MakeEvents(EventTypeId type, int count,
                                    Timestamp step = 1000) {
  std::vector<SimpleEvent> events;
  for (int i = 0; i < count; ++i) {
    events.push_back(Ev(type, i, static_cast<Timestamp>(i) * step,
                        static_cast<double>(i)));
  }
  return events;
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(7);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(8));
}

TEST(BoundedQueueTest, BlocksProducerAtCapacity) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);
    pushed = true;
  });
  // Producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, PushBatchAccountsCapacityInItems) {
  BoundedQueue<int> q(4);
  std::vector<int> batch = {1, 2, 3};
  ASSERT_TRUE(q.PushBatch(&batch));
  EXPECT_TRUE(batch.empty());  // moved out, reusable
  EXPECT_EQ(q.size(), 3u);

  // A second batch of 3 exceeds the capacity of 4: the producer must block
  // until the consumer frees space.
  batch = {4, 5, 6};
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.PushBatch(&batch);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::vector<int> popped;
  ASSERT_EQ(q.PopBatch(&popped, 64), 3u);
  EXPECT_EQ(popped, (std::vector<int>{1, 2, 3}));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_EQ(q.PopBatch(&popped, 2), 2u);
  EXPECT_EQ(popped, (std::vector<int>{4, 5}));
}

TEST(BoundedQueueTest, OversizedBatchAdmittedIntoEmptyQueue) {
  BoundedQueue<int> q(2);
  std::vector<int> batch = {1, 2, 3, 4, 5};
  ASSERT_TRUE(q.PushBatch(&batch));  // must not deadlock
  std::vector<int> popped;
  EXPECT_EQ(q.PopBatch(&popped, 64), 5u);
}

TEST(BoundedQueueTest, PopBatchDrainsThenSignalsClose) {
  BoundedQueue<int> q(8);
  std::vector<int> batch = {7, 8};
  ASSERT_TRUE(q.PushBatch(&batch));
  q.Close();
  std::vector<int> popped;
  EXPECT_EQ(q.PopBatch(&popped, 64), 2u);
  EXPECT_EQ(q.PopBatch(&popped, 64), 0u);
  batch = {9};
  EXPECT_FALSE(q.PushBatch(&batch));
}

// --- SpscRing ----------------------------------------------------------------

TEST(SpscRingTest, FifoOrderWithWraparound) {
  SpscRing<int> ring(4);  // rounds to a small power of two
  ASSERT_EQ(ring.capacity(), 4u);
  int next_push = 0, next_pop = 0;
  // Push/pop interleaved so the indices wrap the ring many times.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.Push(next_push++));
    for (int i = 0; i < 3; ++i) {
      auto v = ring.Pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, CrossThreadTransferPreservesOrder) {
  SpscRing<int64_t> ring(64);
  constexpr int64_t kCount = 20000;
  std::thread producer([&ring] {
    std::vector<int64_t> batch;
    for (int64_t i = 0; i < kCount; ++i) {
      batch.push_back(i);
      if (batch.size() == 7) {
        ASSERT_TRUE(ring.PushAll(&batch));
      }
    }
    ASSERT_TRUE(ring.PushAll(&batch));
    ring.Close();
  });
  std::vector<int64_t> popped;
  int64_t expected = 0;
  while (ring.PopN(&popped, 13) > 0) {
    for (int64_t v : popped) EXPECT_EQ(v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
}

TEST(SpscRingTest, CloseUnblocksProducerMidBatch) {
  SpscRing<int> ring(4);
  // Fill the ring, then push a batch that cannot fully fit: the producer
  // publishes a partial chunk and blocks for the rest.
  std::vector<int> fill = {0, 1, 2, 3};
  ASSERT_TRUE(ring.PushAll(&fill));
  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread producer([&] {
    std::vector<int> batch = {4, 5, 6};
    result = ring.PushAll(&batch);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  ring.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result.load());  // remaining items dropped
  // The consumer still drains everything published before the close.
  std::vector<int> popped;
  size_t drained = 0;
  while (ring.PopN(&popped, 64) > 0) drained += popped.size();
  EXPECT_GE(drained, 4u);
}

TEST(SpscRingTest, CloseUnblocksConsumer) {
  SpscRing<int> ring(4);
  std::atomic<bool> got_end{false};
  std::thread consumer([&] {
    std::vector<int> popped;
    while (ring.PopN(&popped, 8) > 0) {
    }
    got_end = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.Close();
  consumer.join();
  EXPECT_TRUE(got_end.load());
}

// --- Channels ----------------------------------------------------------------

std::unique_ptr<Channel> MakeTestChannel(bool spsc) {
  return MakeChannel(spsc ? 1 : 2, /*capacity_messages=*/1024,
                     /*enable_spsc=*/true);
}

TEST(ChannelTest, SelectionByFanIn) {
  EXPECT_TRUE(MakeChannel(1, 16, true)->is_spsc());
  EXPECT_FALSE(MakeChannel(2, 16, true)->is_spsc());   // MPMC fallback
  EXPECT_FALSE(MakeChannel(1, 16, false)->is_spsc());  // knob off
}

TEST(ChannelTest, ControlStaysBehindTuplesAcrossBatchBoundaries) {
  for (bool spsc : {false, true}) {
    auto channel = MakeTestChannel(spsc);
    ASSERT_EQ(channel->is_spsc(), spsc);
    MessageBatch batch;
    for (int i = 0; i < 5; ++i) {
      batch.push_back(Message::Data(0, Tuple(test::Ev(0, i, 1000 + i))));
    }
    batch.push_back(Message::Control(MessageKind::kWatermark, 0, 999));
    ASSERT_TRUE(channel->PushBatch(&batch));
    batch.push_back(Message::Control(MessageKind::kEnd, 0, 0));
    ASSERT_TRUE(channel->PushBatch(&batch));
    channel->Close();

    // Pop with a smaller batch limit than was pushed: order must hold.
    std::vector<MessageKind> kinds;
    MessageBatch in;
    while (channel->PopBatch(&in, 2)) {
      for (const Message& m : in) kinds.push_back(m.kind);
    }
    ASSERT_EQ(kinds.size(), 7u) << (spsc ? "spsc" : "mpmc");
    for (int i = 0; i < 5; ++i) EXPECT_EQ(kinds[i], MessageKind::kTuple);
    EXPECT_EQ(kinds[5], MessageKind::kWatermark);
    EXPECT_EQ(kinds[6], MessageKind::kEnd);
  }
}

TEST(ChannelTest, SnapshotCountsBatchesAndMessages) {
  auto channel = MakeTestChannel(true);
  MessageBatch batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(Message::Data(0, Tuple(test::Ev(0, i, i))));
  }
  ASSERT_TRUE(channel->PushBatch(&batch));
  batch.push_back(Message::Data(0, Tuple(test::Ev(0, 64, 64))));
  ASSERT_TRUE(channel->PushBatch(&batch));
  ChannelStats stats = channel->Snapshot("op");
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.messages, 65);
  EXPECT_EQ(stats.fill_hist[ChannelStats::FillBucket(64)], 1);
  EXPECT_EQ(stats.fill_hist[ChannelStats::FillBucket(1)], 1);
  EXPECT_TRUE(stats.spsc);
  EXPECT_DOUBLE_EQ(stats.avg_fill(), 32.5);
}

TEST(ChannelStatsTest, FillBuckets) {
  EXPECT_EQ(ChannelStats::FillBucket(1), 0);
  EXPECT_EQ(ChannelStats::FillBucket(2), 1);
  EXPECT_EQ(ChannelStats::FillBucket(3), 2);
  EXPECT_EQ(ChannelStats::FillBucket(4), 2);
  EXPECT_EQ(ChannelStats::FillBucket(5), 3);
  EXPECT_EQ(ChannelStats::FillBucket(64), 6);
  EXPECT_EQ(ChannelStats::FillBucket(1000), 7);
}

// --- JobGraph ----------------------------------------------------------------

TEST(JobGraphTest, ValidatesMissingInput) {
  JobGraph graph;
  graph.AddOperator(std::make_unique<UnionOperator>(2));
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, ValidatesDoubleConnection) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1)));
  NodeId op = graph.AddOperator(std::make_unique<UnionOperator>(1));
  ASSERT_TRUE(graph.Connect(src, op, 0).ok());
  ASSERT_TRUE(graph.Connect(src, op, 0).ok());  // second edge into port 0
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, RejectsConnectIntoSource) {
  JobGraph graph;
  NodeId a = graph.AddSource(
      std::make_unique<VectorSource>("a", MakeEvents(0, 1)));
  NodeId b = graph.AddSource(
      std::make_unique<VectorSource>("b", MakeEvents(0, 1)));
  EXPECT_FALSE(graph.Connect(a, b, 0).ok());
}

TEST(JobGraphTest, RejectsBadPort) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1)));
  NodeId op = graph.AddOperator(std::make_unique<UnionOperator>(1));
  EXPECT_FALSE(graph.Connect(src, op, 1).ok());
}

TEST(JobGraphTest, TopologicalOrderSourcesFirst) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1)));
  NodeId op = graph.AddOperatorAfter(src, std::make_unique<UnionOperator>(1));
  NodeId sink = graph.AddOperatorAfter(op, std::make_unique<CollectSink>());
  auto order = graph.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], src);
  EXPECT_EQ(order[2], sink);
}

// --- PipelineExecutor ----------------------------------------------------------

TEST(ExecutorTest, PassthroughDeliversAllTuples) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 100)));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples_ingested, 100);
  EXPECT_EQ(result.matches_emitted, 100);
  EXPECT_EQ(sink->tuples().size(), 100u);
}

TEST(ExecutorTest, MergesSourcesInEventTimeOrder) {
  JobGraph graph;
  std::vector<SimpleEvent> odd, even;
  for (int i = 0; i < 10; ++i) {
    (i % 2 ? odd : even).push_back(Ev(0, i, i * 100, 0));
  }
  NodeId a = graph.AddSource(std::make_unique<VectorSource>("odd", odd));
  NodeId b = graph.AddSource(std::make_unique<VectorSource>("even", even));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(a, u, 0).ok());
  ASSERT_TRUE(graph.Connect(b, u, 1).ok());
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(u, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(sink->tuples().size(), 10u);
  for (size_t i = 1; i < sink->tuples().size(); ++i) {
    EXPECT_LE(sink->tuples()[i - 1].event_time(), sink->tuples()[i].event_time());
  }
}

TEST(ExecutorTest, FilterDropsNonMatching) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 100)));
  NodeId filter = graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>(
               [](const Tuple& t) { return t.event(0).value < 10; }));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(filter, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(sink->count(), 10);
}

TEST(ExecutorTest, MemoryLimitFailsJob) {
  // A sink storing every tuple grows state beyond a tiny budget; the
  // executor reports the simulated memory exhaustion (paper §5.2.3: FCEP
  // execution failure due to memory exhaustion).
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 100000)));
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/true);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ExecutorOptions options;
  options.memory_limit_bytes = 64 * 1024;
  ExecutionResult result = RunJob(&graph, sink, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ResourceExhausted"), std::string::npos);
}

TEST(ExecutorTest, StateTimelineSampled) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 10000)));
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/true);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ExecutorOptions options;
  options.watermark_interval = 64;
  options.state_sample_interval = 512;
  ExecutionResult result = RunJob(&graph, sink, options);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.state_timeline.size(), 5u);
  EXPECT_GT(result.peak_state_bytes, 0u);
}

// --- ThreadedExecutor ------------------------------------------------------------

TEST(ThreadedExecutorTest, MatchesSingleThreadedResults) {
  auto build = [](CollectSink** sink_out) {
    auto graph = std::make_unique<JobGraph>();
    NodeId src = graph->AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(0, 5000)));
    NodeId filter = graph->AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value >= 100; }));
    auto sink_op = std::make_unique<CollectSink>();
    *sink_out = sink_op.get();
    graph->AddOperatorAfter(filter, std::move(sink_op));
    return graph;
  };

  CollectSink* sink1 = nullptr;
  auto graph1 = build(&sink1);
  ExecutionResult r1 = RunJob(graph1.get(), sink1);

  CollectSink* sink2 = nullptr;
  auto graph2 = build(&sink2);
  ThreadedExecutor threaded(graph2.get());
  ExecutionResult r2 = threaded.Run(sink2);

  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r1.matches_emitted, r2.matches_emitted);
  EXPECT_EQ(test::MatchSet(sink1->tuples()), test::MatchSet(sink2->tuples()));
}

TEST(ThreadedExecutorTest, TwoSourceUnion) {
  JobGraph graph;
  NodeId a = graph.AddSource(
      std::make_unique<VectorSource>("a", MakeEvents(0, 1000)));
  NodeId b = graph.AddSource(
      std::make_unique<VectorSource>("b", MakeEvents(1, 1000)));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(a, u, 0).ok());
  ASSERT_TRUE(graph.Connect(b, u, 1).ok());
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(u, std::move(sink_op));
  ThreadedExecutor executor(&graph);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 2000);
}

TEST(ThreadedExecutorTest, BatchSizeDoesNotChangeResults) {
  auto build = [](CollectSink** sink_out) {
    auto graph = std::make_unique<JobGraph>();
    NodeId src = graph->AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(0, 3000)));
    NodeId filter = graph->AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value >= 100; }));
    auto sink_op = std::make_unique<CollectSink>();
    *sink_out = sink_op.get();
    graph->AddOperatorAfter(filter, std::move(sink_op));
    return graph;
  };

  CollectSink* ref_sink = nullptr;
  auto ref_graph = build(&ref_sink);
  ExecutionResult ref = RunJob(ref_graph.get(), ref_sink);
  ASSERT_TRUE(ref.ok);
  auto ref_set = test::MatchSet(ref_sink->tuples());

  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
    for (bool spsc : {false, true}) {
      CollectSink* sink = nullptr;
      auto graph = build(&sink);
      ThreadedExecutorOptions options;
      options.batch_size = batch;
      options.enable_spsc = spsc;
      ThreadedExecutor executor(graph.get(), options);
      ExecutionResult result = executor.Run(sink);
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.matches_emitted, ref.matches_emitted)
          << "batch=" << batch << " spsc=" << spsc;
      EXPECT_EQ(test::MatchSet(sink->tuples()), ref_set)
          << "batch=" << batch << " spsc=" << spsc;
    }
  }
}

TEST(ThreadedExecutorTest, SingleProducerEdgesUseSpscFastPath) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 500)));
  NodeId filter = graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
  auto sink_op = std::make_unique<CollectSink>(false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(filter, std::move(sink_op));
  // Chaining fuses filter -> sink, so only the source -> filter edge is a
  // real channel; run chain-off to observe the per-edge channel layout.
  ThreadedExecutorOptions options;
  options.enable_chaining = false;
  ThreadedExecutor executor(&graph, options);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.channel_stats.size(), 2u);
  int64_t total_batches = 0;
  for (const ChannelStats& stats : result.channel_stats) {
    EXPECT_FALSE(stats.fused) << stats.ToString();
    EXPECT_TRUE(stats.spsc) << stats.ToString();
    // 500 tuples + watermarks + end, batched: far fewer pushes than
    // messages.
    EXPECT_GE(stats.messages, 500);
    EXPECT_LT(stats.batches, stats.messages);
    total_batches += stats.batches;
  }
  EXPECT_GT(total_batches, 0);
}

TEST(ThreadedExecutorTest, FusedEdgeReportedAsZeroTrafficChannel) {
  // Default chaining: filter -> sink fuses, the sink's ChannelStats entry
  // must survive flagged `fused` with the hand-off count but zero queue
  // traffic, while source -> filter stays a real SPSC channel.
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 500)));
  NodeId filter = graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
  auto sink_op = std::make_unique<CollectSink>(false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(filter, std::move(sink_op));
  ThreadedExecutor executor(&graph);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 500);
  ASSERT_EQ(result.channel_stats.size(), 2u);
  bool saw_filter = false, saw_sink = false;
  for (const ChannelStats& stats : result.channel_stats) {
    if (stats.consumer == "sink") {
      EXPECT_TRUE(stats.fused) << stats.ToString();
      EXPECT_EQ(stats.tuples, 500) << stats.ToString();
      EXPECT_EQ(stats.batches, 0) << stats.ToString();
      EXPECT_EQ(stats.blocked_push_nanos, 0) << stats.ToString();
      saw_sink = true;
    } else {
      EXPECT_FALSE(stats.fused) << stats.ToString();
      EXPECT_TRUE(stats.spsc) << stats.ToString();
      EXPECT_GE(stats.messages, 500) << stats.ToString();
      saw_filter = true;
    }
  }
  EXPECT_TRUE(saw_filter);
  EXPECT_TRUE(saw_sink);
}

TEST(ThreadedExecutorTest, TwoProducerInputFallsBackToMpmcQueue) {
  JobGraph graph;
  NodeId a = graph.AddSource(
      std::make_unique<VectorSource>("a", MakeEvents(0, 300)));
  NodeId b = graph.AddSource(
      std::make_unique<VectorSource>("b", MakeEvents(1, 300)));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(a, u, 0).ok());
  ASSERT_TRUE(graph.Connect(b, u, 1).ok());
  auto sink_op = std::make_unique<CollectSink>(false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(u, std::move(sink_op));
  ThreadedExecutor executor(&graph);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 600);
  ASSERT_EQ(result.channel_stats.size(), 2u);
  bool saw_union = false, saw_sink = false;
  for (const ChannelStats& stats : result.channel_stats) {
    if (stats.consumer.rfind("union", 0) == 0) {
      EXPECT_FALSE(stats.fused) << stats.ToString();
      EXPECT_FALSE(stats.spsc) << "two producers must use the MPMC queue";
      saw_union = true;
    } else {
      // union -> sink fuses under default chaining: the sink's entry is a
      // fused pseudo-channel, not a queue.
      EXPECT_TRUE(stats.fused) << stats.ToString();
      EXPECT_EQ(stats.tuples, 600) << stats.ToString();
      saw_sink = true;
    }
  }
  EXPECT_TRUE(saw_union);
  EXPECT_TRUE(saw_sink);
}

// --- Operator chaining ------------------------------------------------------

/// Stateless pass-through without CloneForSubtask: legal at parallelism 1
/// but forces any neighbouring parallel chain to split around it.
class NonCloneablePass : public Operator {
 public:
  std::string name() const override { return "nonclone"; }
  Status Process(int, Tuple tuple, Collector* out) override {
    out->Emit(std::move(tuple));
    return Status::OK();
  }
};

TEST(ChainPlannerTest, FusesLinearForwardPipeline) {
  JobGraph graph;
  NodeId src =
      graph.AddSource(std::make_unique<VectorSource>("s", MakeEvents(0, 10)));
  NodeId filter = graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
  NodeId map = graph.AddOperatorAfter(
      filter, std::make_unique<MapOperator>([](Tuple t) { return t; }));
  NodeId sink = graph.AddOperatorAfter(map, std::make_unique<CollectSink>(false));

  ChainLayout layout = ComputeChainLayout(graph);
  ASSERT_EQ(layout.num_chains(), 1);
  EXPECT_EQ(layout.chains[0], (std::vector<NodeId>{filter, map, sink}));
  EXPECT_EQ(layout.edge_verdict[src][0], ChainBreak::kSourceProducer);
  EXPECT_EQ(layout.edge_verdict[filter][0], ChainBreak::kChained);
  EXPECT_EQ(layout.edge_verdict[map][0], ChainBreak::kChained);
  EXPECT_EQ(layout.fused_edge_count(), 2);
  EXPECT_TRUE(layout.is_head(filter));
  EXPECT_FALSE(layout.is_head(map));
  EXPECT_EQ(layout.chain_of[src], -1);
  EXPECT_EQ(layout.chain_of[map], 0);
  EXPECT_EQ(layout.pos_in_chain[sink], 2);

  // Disabled: every operator is its own chain, all forward op edges report
  // kDisabled.
  ChainLayout off = ComputeChainLayout(graph, /*chaining_enabled=*/false);
  EXPECT_EQ(off.num_chains(), 3);
  EXPECT_EQ(off.fused_edge_count(), 0);
  EXPECT_EQ(off.edge_verdict[filter][0], ChainBreak::kDisabled);
}

TEST(ChainPlannerTest, BreaksOnFanOutFanInHashAndKnob) {
  // src -> split -> {left, right} -> union2 -> sink, with a hash edge
  // right -> union2: exercises fan-out, fan-in, and non-forward verdicts.
  JobGraph graph;
  NodeId src =
      graph.AddSource(std::make_unique<VectorSource>("s", MakeEvents(0, 10)));
  NodeId split = graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>([](const Tuple&) { return true; },
                                            "split"));
  NodeId left = graph.AddOperatorAfter(
      split, std::make_unique<MapOperator>([](Tuple t) { return t; }, "left"));
  NodeId right = graph.AddOperator(
      std::make_unique<MapOperator>([](Tuple t) { return t; }, "right"));
  ASSERT_TRUE(graph.Connect(split, right, 0).ok());
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(left, u, 0).ok());
  ASSERT_TRUE(graph.Connect(right, u, 1, PartitionMode::kHash).ok());
  NodeId sink = graph.AddOperatorAfter(u, std::make_unique<CollectSink>(false));

  ChainLayout layout = ComputeChainLayout(graph);
  EXPECT_EQ(layout.edge_verdict[split][0], ChainBreak::kFanOut);
  EXPECT_EQ(layout.edge_verdict[split][1], ChainBreak::kFanOut);
  EXPECT_EQ(layout.edge_verdict[left][0], ChainBreak::kFanIn);
  EXPECT_EQ(layout.edge_verdict[right][0], ChainBreak::kNotForward);
  EXPECT_EQ(layout.edge_verdict[u][0], ChainBreak::kChained);
  // Chains: {split}, {left}, {right}, {union2, sink}.
  EXPECT_EQ(layout.num_chains(), 4);
  EXPECT_EQ(layout.chain_of[u], layout.chain_of[sink]);

  // The per-node knob breaks the union2 -> sink fusion.
  ASSERT_TRUE(graph.SetChaining(sink, false).ok());
  ChainLayout opted = ComputeChainLayout(graph);
  EXPECT_EQ(opted.edge_verdict[u][0], ChainBreak::kConsumerOptedOut);
  ASSERT_TRUE(graph.SetChaining(sink, true).ok());
  ASSERT_TRUE(graph.SetChaining(u, false).ok());
  opted = ComputeChainLayout(graph);
  EXPECT_EQ(opted.edge_verdict[u][0], ChainBreak::kProducerOptedOut);
  EXPECT_FALSE(graph.SetChaining(src, false).ok()) << "sources never chain";
}

TEST(ThreadedExecutorTest, ChainSplitAroundNonCloneableOperator) {
  // filter(x2) -> map(x2) fuses into a parallel chain; map ->
  // nonclone(x1) must split (parallelism mismatch), keeping the
  // CloneForSubtask-incapable operator on its own single subtask; nonclone
  // -> sink fuses again. The run must still deliver every tuple once.
  auto build = [](CollectSink** sink_out, JobGraph* graph, ChainLayout* layout) {
    NodeId src = graph->AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(0, 400)));
    NodeId filter = graph->AddOperator(std::make_unique<FilterOperator>(
        [](const Tuple&) { return true; }));
    ASSERT_TRUE(graph->Connect(src, filter, 0, PartitionMode::kHash).ok());
    NodeId map = graph->AddOperatorAfter(
        filter, std::make_unique<MapOperator>([](Tuple t) { return t; }));
    NodeId pass = graph->AddOperatorAfter(map,
                                          std::make_unique<NonCloneablePass>());
    auto sink_op = std::make_unique<CollectSink>(false);
    *sink_out = sink_op.get();
    NodeId sink = graph->AddOperatorAfter(pass, std::move(sink_op));
    ASSERT_TRUE(graph->SetParallelism(filter, 2).ok());
    ASSERT_TRUE(graph->SetParallelism(map, 2).ok());

    *layout = ComputeChainLayout(*graph);
    EXPECT_EQ(layout->edge_verdict[filter][0], ChainBreak::kChained);
    EXPECT_EQ(layout->edge_verdict[map][0], ChainBreak::kParallelismMismatch);
    EXPECT_EQ(layout->edge_verdict[pass][0], ChainBreak::kChained);
    EXPECT_EQ(layout->num_chains(), 2);
    EXPECT_EQ(graph->parallelism(layout->chains[0].front()), 2);
    (void)src;
    (void)sink;
  };

  std::vector<std::string> ref;
  for (bool chaining : {false, true}) {
    JobGraph graph;
    ChainLayout layout;
    CollectSink* sink = nullptr;
    build(&sink, &graph, &layout);
    ThreadedExecutorOptions options;
    options.enable_chaining = chaining;
    ThreadedExecutor executor(&graph, options);
    ExecutionResult result = executor.Run(sink);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.matches_emitted, 400);
    if (!chaining) {
      ref = test::MatchMultiset(sink->tuples());
      continue;
    }
    EXPECT_EQ(test::MatchMultiset(sink->tuples()), ref);
    // The parallel chain reports its skew from the fused hand-off counts.
    bool saw_map_skew = false;
    for (const PartitionSkew& skew : result.partition_skew) {
      if (skew.op == "map") {
        saw_map_skew = true;
        int64_t total = 0;
        for (int64_t t : skew.tuples_per_subtask) total += t;
        EXPECT_EQ(total, 400) << skew.ToString();
      }
    }
    EXPECT_TRUE(saw_map_skew);
  }
}

/// Buffers every tuple and re-emits the buffer on each watermark: models a
/// windowed operator whose results materialize in OnWatermark.
class HoldUntilWatermark : public Operator {
 public:
  std::string name() const override { return "hold"; }
  Status Process(int, Tuple tuple, Collector*) override {
    held_.push_back(std::move(tuple));
    return Status::OK();
  }
  Status OnWatermark(Timestamp, Collector* out) override {
    for (Tuple& t : held_) out->Emit(std::move(t));
    held_.clear();
    return Status::OK();
  }

 private:
  std::vector<Tuple> held_;
};

/// Logs the interleaving of Process and OnWatermark calls it observes.
class RecordingOperator : public Operator {
 public:
  struct Entry {
    bool is_watermark;
    Timestamp value;  // watermark, or the tuple's event time
  };

  explicit RecordingOperator(std::vector<Entry>* log) : log_(log) {}
  std::string name() const override { return "recorder"; }
  Status Process(int, Tuple tuple, Collector* out) override {
    log_->push_back({false, tuple.event_time()});
    out->Emit(std::move(tuple));
    return Status::OK();
  }
  Status OnWatermark(Timestamp watermark, Collector*) override {
    log_->push_back({true, watermark});
    return Status::OK();
  }

 private:
  std::vector<Entry>* log_;
};

TEST(ThreadedExecutorTest, ChainDeliversWatermarkEmissionsBeforeTheWatermark) {
  // src -> hold -> recorder -> sink chains into one subtask. Tuples hold
  // emits during OnWatermark(w) must reach the recorder's Process before
  // the chain forwards w to the recorder — otherwise a downstream windowed
  // operator would treat them as late and drop them.
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 200)));
  NodeId hold = graph.AddOperatorAfter(src, std::make_unique<HoldUntilWatermark>());
  std::vector<RecordingOperator::Entry> log;
  NodeId recorder = graph.AddOperatorAfter(
      hold, std::make_unique<RecordingOperator>(&log));
  auto sink_op = std::make_unique<CollectSink>(false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(recorder, std::move(sink_op));

  ThreadedExecutorOptions options;
  options.watermark_interval = 32;
  ThreadedExecutor executor(&graph, options);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 200);

  // The whole pipeline behind the source fused into one chain.
  ChainLayout layout = ComputeChainLayout(graph);
  EXPECT_EQ(layout.num_chains(), 1);
  EXPECT_EQ(layout.chain_of[hold], layout.chain_of[recorder]);

  // Ordering: once the recorder saw watermark w, every following tuple
  // must be strictly newer than w (hold's buffered tuples, all <= w, were
  // delivered first).
  Timestamp last_watermark = kMinTimestamp;
  int watermarks_seen = 0;
  for (const RecordingOperator::Entry& entry : log) {
    if (entry.is_watermark) {
      EXPECT_GT(entry.value, last_watermark);
      last_watermark = entry.value;
      ++watermarks_seen;
    } else {
      EXPECT_GT(entry.value, last_watermark)
          << "tuple older than an already-forwarded watermark";
    }
  }
  EXPECT_GE(watermarks_seen, 2);
}

TEST(ThreadedExecutorTest, RateLimitedSourceStillFlushesPartialBatches) {
  // A slow source must not strand tuples in half-filled batches: the
  // adaptive staging plus flush-on-idle keeps matches flowing.
  JobGraph graph;
  NodeId src = graph.AddSource(std::make_unique<RateLimitedSource>(
      std::make_unique<VectorSource>("s", MakeEvents(0, 50)), 5000.0));
  auto sink_op = std::make_unique<CollectSink>(false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ThreadedExecutorOptions options;
  options.batch_size = 64;
  options.source_flush_timeout_millis = 2;
  ThreadedExecutor executor(&graph, options);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 50);
}

// --- Metrics ----------------------------------------------------------------------

TEST(MetricsTest, LatencyStatsFromSamples) {
  std::vector<int64_t> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  LatencyStats stats = LatencyStats::FromSamples(samples);
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 50.5);
  EXPECT_DOUBLE_EQ(stats.max_ms, 100.0);
  EXPECT_NEAR(stats.p50_ms, 50.0, 1.0);
  EXPECT_NEAR(stats.p99_ms, 99.0, 1.0);
}

TEST(MetricsTest, EmptySamples) {
  LatencyStats stats = LatencyStats::FromSamples({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 0.0);
}

TEST(MetricsTest, ThroughputFromResult) {
  ExecutionResult result;
  result.tuples_ingested = 1000;
  result.elapsed_seconds = 2.0;
  EXPECT_DOUBLE_EQ(result.throughput_tps(), 500.0);
}

TEST(PartitioningTest, KeyToSubtaskDeterministicAndCovering) {
  for (int64_t key = -5; key < 200; ++key) {
    EXPECT_EQ(KeyToSubtask(key, 1), 0);
    for (int parallelism : {2, 3, 4, 7}) {
      int subtask = KeyToSubtask(key, parallelism);
      EXPECT_GE(subtask, 0);
      EXPECT_LT(subtask, parallelism);
      EXPECT_EQ(subtask, KeyToSubtask(key, parallelism));
    }
  }
  // 128 sequential keys must address every subtask of a 4-way operator;
  // the mixer exists precisely so dense key ranges don't alias.
  std::vector<bool> hit(4, false);
  for (int64_t key = 0; key < 128; ++key) hit[KeyToSubtask(key, 4)] = true;
  for (bool h : hit) EXPECT_TRUE(h);
}

TEST(PartitioningTest, PhysicalFanInCountsProducerSubtasks) {
  JobGraph graph;
  NodeId s1 = graph.AddSource(
      std::make_unique<VectorSource>("s1", MakeEvents(0, 10)));
  NodeId s2 = graph.AddSource(
      std::make_unique<VectorSource>("s2", MakeEvents(0, 10)));
  NodeId m1 = graph.AddOperatorAfter(s1, MapOperator::KeyByAttribute(0, Attribute::kId));
  NodeId m2 = graph.AddOperatorAfter(s2, MapOperator::KeyByAttribute(0, Attribute::kId));
  ASSERT_TRUE(graph.SetParallelism(m1, 3).ok());
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(m1, u, 0).ok());
  ASSERT_TRUE(graph.Connect(m2, u, 1).ok());
  EXPECT_EQ(graph.fan_in(u), 2);
  EXPECT_EQ(graph.physical_fan_in(u), 4);  // 3 subtasks + 1
}

TEST(ThreadedExecutorTest, PartitionSkewAccountsEveryTuple) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1000)));
  NodeId keyed = graph.AddOperatorAfter(
      src, MapOperator::KeyByAttribute(0, Attribute::kId));
  NodeId mapped = graph.AddOperator(
      std::make_unique<MapOperator>([](Tuple t) { return t; }, "identity"));
  ASSERT_TRUE(graph.Connect(keyed, mapped, 0, PartitionMode::kHash).ok());
  ASSERT_TRUE(graph.SetParallelism(mapped, 2).ok());
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(mapped, std::move(sink_op));

  ThreadedExecutor executor(&graph);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 1000);

  ASSERT_FALSE(result.partition_skew.empty());
  const PartitionSkew& skew = result.partition_skew.front();
  EXPECT_EQ(skew.parallelism, 2);
  ASSERT_EQ(skew.tuples_per_subtask.size(), 2u);
  int64_t total = 0;
  for (int64_t n : skew.tuples_per_subtask) total += n;
  EXPECT_EQ(total, 1000);  // hash routing loses nothing
  EXPECT_GE(skew.imbalance(), 1.0);
  EXPECT_EQ(skew.max_tuples,
            std::max(skew.tuples_per_subtask[0], skew.tuples_per_subtask[1]));
}

TEST(ThreadedExecutorTest, ColumnarHashEdgeCountsBlocksRowsAndSkew) {
  // source -> compiled(filter + key-by-id) -> hash -> join(P=2) -> sink,
  // per join side. With block hash-partitioning on, the compiled prefix
  // ships column blocks that PartitionByKey splits per subtask: the join's
  // input channels must report the block envelopes and the rows inside
  // them, and PartitionSkew must count those rows. With it off the same
  // block-producing operator scatters rows individually through the shim:
  // scattered_rows accounts for every row and the skew totals are
  // unchanged — accounting is layout-independent.
  auto make_program = [] {
    Predicate pass;  // empty filter: every row survives to the key stage
    return ExprProgram::Fuse(
        ExprProgram::Filter(pass, ExprProgram::VarMode::kBroadcast),
        ExprProgram::KeyByAttribute(0, Attribute::kId));
  };
  auto run = [&](bool hash_partition) {
    JobGraph graph;
    NodeId l = graph.AddSource(
        std::make_unique<VectorSource>("l", MakeEvents(0, 60)));
    NodeId r = graph.AddSource(
        std::make_unique<VectorSource>("r", MakeEvents(1, 60)));
    NodeId kl = graph.AddOperatorAfter(
        l, std::make_unique<CompiledStatelessOperator>(make_program(), "key-l"));
    NodeId kr = graph.AddOperatorAfter(
        r, std::make_unique<CompiledStatelessOperator>(make_program(), "key-r"));
    NodeId j = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
        SlidingWindowSpec{4000, 1000}, Predicate(), TimestampMode::kMax,
        "join"));
    EXPECT_TRUE(graph.Connect(kl, j, 0, PartitionMode::kHash).ok());
    EXPECT_TRUE(graph.Connect(kr, j, 1, PartitionMode::kHash).ok());
    EXPECT_TRUE(graph.SetParallelism(j, 2).ok());
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(j, std::move(sink_op));
    ThreadedExecutorOptions options;
    options.enable_columnar = true;
    options.columnar_hash_partition = hash_partition;
    ThreadedExecutor executor(&graph, options);
    ExecutionResult result = executor.Run(sink);
    EXPECT_TRUE(result.ok) << result.error;
    return result;
  };

  for (bool hash_partition : {true, false}) {
    ExecutionResult result = run(hash_partition);
    int64_t join_rows = 0, join_blocks = 0, join_block_rows = 0,
            join_scattered = 0;
    for (const ChannelStats& stats : result.channel_stats) {
      if (stats.consumer.rfind("join", 0) != 0) continue;
      join_rows += stats.tuples;
      join_blocks += stats.columnar_blocks;
      join_block_rows += stats.columnar_rows;
      join_scattered += stats.scattered_rows;
    }
    // 60 rows per side reach the join regardless of transfer layout.
    EXPECT_EQ(join_rows, 120) << "hash_partition=" << hash_partition;
    if (hash_partition) {
      EXPECT_GE(join_blocks, 2) << "blocks must ship on the hash edges";
      EXPECT_EQ(join_block_rows, 120);
      EXPECT_EQ(join_scattered, 0);
    } else {
      EXPECT_EQ(join_blocks, 0);
      EXPECT_EQ(join_block_rows, 0);
      EXPECT_EQ(join_scattered, 120)
          << "the scatter shim must account for every row";
    }
    bool saw_skew = false;
    for (const PartitionSkew& skew : result.partition_skew) {
      if (skew.op.rfind("join", 0) != 0) continue;
      saw_skew = true;
      EXPECT_EQ(skew.parallelism, 2);
      int64_t total = 0;
      for (int64_t n : skew.tuples_per_subtask) total += n;
      EXPECT_EQ(total, 120) << "skew must count rows inside column blocks";
    }
    EXPECT_TRUE(saw_skew) << "hash_partition=" << hash_partition;
  }
}

}  // namespace
}  // namespace cep2asp
