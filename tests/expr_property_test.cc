// Randomized equivalence tests: the compiled ExprProgram bytecode must be
// observationally identical to the interpreted Predicate evaluation it
// replaces — same verdict for every predicate over every input, including
// NaN / ±inf attribute values and constants (comparisons share EvalCmp, so
// IEEE semantics carry over), and multiset-equal operator outputs when a
// fused filter→key program runs a whole batch against the interpreted
// FilterOperator + MapOperator pair.

#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "asp/compiled_stateless.h"
#include "asp/stateless.h"
#include "event/expr_program.h"
#include "event/predicate.h"
#include "runtime/operator.h"

namespace cep2asp {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Measurement values and comparison constants: clustered so random
/// comparisons land on both sides (and exactly on) the thresholds, plus
/// the IEEE specials when the caller allows them.
double RandomMeasure(std::mt19937_64& rng, bool allow_non_finite) {
  static const double kFinite[] = {0.0,  -0.0, 0.5,    -1.25, 3.0,
                                   42.0, 59.9, 60.0,   100.0, -273.15,
                                   1e6,  1e-9, -1e300, 7.25,  13.0};
  static const double kSpecial[] = {kNaN, kInf, -kInf};
  if (allow_non_finite && rng() % 8 == 0) return kSpecial[rng() % 3];
  return kFinite[rng() % (sizeof(kFinite) / sizeof(kFinite[0]))];
}

SimpleEvent RandomEvent(std::mt19937_64& rng, bool allow_non_finite) {
  SimpleEvent e;
  e.type = 1;
  e.id = static_cast<int64_t>(rng() % 8);
  e.ts = static_cast<Timestamp>(rng() % 10000);
  e.aux_ts = static_cast<Timestamp>(rng() % 10000);
  e.value = RandomMeasure(rng, allow_non_finite);
  e.lat = RandomMeasure(rng, allow_non_finite);
  e.lon = RandomMeasure(rng, allow_non_finite);
  return e;
}

Attribute RandomAttr(std::mt19937_64& rng) {
  static const Attribute kAttrs[] = {Attribute::kValue, Attribute::kLat,
                                     Attribute::kLon,   Attribute::kTs,
                                     Attribute::kId,    Attribute::kAuxTs};
  return kAttrs[rng() % 6];
}

CmpOp RandomCmpOp(std::mt19937_64& rng) {
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  return kOps[rng() % 6];
}

/// Random conjunction over `arity` variables: 0..5 terms (0 = True), each
/// attr/attr (with occasional rhs offset) or attr/const (constants may be
/// NaN / ±inf).
Predicate RandomPredicate(std::mt19937_64& rng, int arity) {
  Predicate pred;
  const int terms = static_cast<int>(rng() % 6);
  for (int i = 0; i < terms; ++i) {
    const AttrRef lhs{static_cast<int>(rng() % static_cast<unsigned>(arity)),
                      RandomAttr(rng)};
    const CmpOp op = RandomCmpOp(rng);
    if (rng() % 2 == 0) {
      const AttrRef rhs{static_cast<int>(rng() % static_cast<unsigned>(arity)),
                        RandomAttr(rng)};
      static const double kOffsets[] = {0.0, 0.0, 0.5, -17.0, 1000.0};
      pred.Add(Comparison::AttrAttr(lhs, op, rhs, kOffsets[rng() % 5]));
    } else {
      pred.Add(Comparison::AttrConst(lhs, op,
                                     RandomMeasure(rng, /*non_finite=*/true)));
    }
  }
  return pred;
}

class VectorCollector : public Collector {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

/// Multiset fingerprint over (constituent events, partition key).
std::map<std::string, int> Multiset(const std::vector<Tuple>& tuples) {
  std::map<std::string, int> ms;
  for (const Tuple& t : tuples) {
    ++ms[MatchKey(t) + "#" + std::to_string(t.key())];
  }
  return ms;
}

TEST(ExprPropertyTest, PositionalProgramsMatchInterpreter) {
  std::mt19937_64 rng(0x5ea0001);
  for (int iter = 0; iter < 300; ++iter) {
    const int arity = 1 + static_cast<int>(rng() % 4);
    const Predicate pred = RandomPredicate(rng, arity);
    const ExprProgram program =
        ExprProgram::Filter(pred, ExprProgram::VarMode::kPositional);
    ASSERT_TRUE(program.ok()) << pred.ToString();
    // The unfused stack encoding (kLoadAttr/kLoadConst/kAddOffset/kCmp/
    // kAndFail) must agree with the fused term opcodes the production
    // compiler emits.
    const ExprProgram unfused = ExprProgram::Filter(
        pred, ExprProgram::VarMode::kPositional, /*fuse_terms=*/false);
    ASSERT_TRUE(unfused.ok()) << pred.ToString();
    for (int sample = 0; sample < 40; ++sample) {
      std::vector<SimpleEvent> events;
      for (int i = 0; i < arity; ++i) {
        events.push_back(RandomEvent(rng, /*non_finite=*/true));
      }
      const bool interpreted =
          pred.EvalOnEvents(events.data(), events.size());
      EXPECT_EQ(program.EvalOnEvents(events.data(), events.size()),
                interpreted)
          << pred.ToString() << "\n" << program.ToString();
      EXPECT_EQ(unfused.EvalOnEvents(events.data(), events.size()),
                interpreted)
          << pred.ToString() << "\n" << unfused.ToString();
    }
  }
}

TEST(ExprPropertyTest, BroadcastProgramsMatchInterpreter) {
  std::mt19937_64 rng(0x5ea0002);
  for (int iter = 0; iter < 300; ++iter) {
    // Broadcast mode binds every variable reference to event 0, exactly
    // like Predicate::EvalOnEvent — so variable indices are free.
    const Predicate pred = RandomPredicate(rng, 4);
    const ExprProgram program =
        ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast);
    ASSERT_TRUE(program.ok()) << pred.ToString();
    for (int sample = 0; sample < 40; ++sample) {
      const SimpleEvent event = RandomEvent(rng, /*non_finite=*/true);
      const bool interpreted = pred.EvalOnEvent(event);
      EXPECT_EQ(program.EvalOnEvents(&event, 1), interpreted)
          << pred.ToString() << "\n" << program.ToString();

      // Run on a tuple agrees and, with no key stores, leaves the key.
      Tuple tuple((event));
      const int64_t key_before = tuple.key();
      EXPECT_EQ(program.Run(&tuple), interpreted) << pred.ToString();
      EXPECT_EQ(tuple.key(), key_before);
    }
  }
}

TEST(ExprPropertyTest, FusedFilterKeyBatchesMatchInterpretedOperators) {
  std::mt19937_64 rng(0x5ea0003);
  static const Attribute kKeyAttrs[] = {Attribute::kId, Attribute::kTs,
                                        Attribute::kAuxTs};
  for (int iter = 0; iter < 100; ++iter) {
    const Predicate pred = RandomPredicate(rng, 4);
    const Attribute key_attr = kKeyAttrs[rng() % 3];
    ExprProgram fused = ExprProgram::Fuse(
        ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast),
        ExprProgram::KeyByAttribute(0, key_attr));
    ASSERT_TRUE(fused.ok()) << pred.ToString();
    ASSERT_TRUE(fused.assigns_key());
    CompiledStatelessOperator compiled(std::move(fused), "filter+key");

    auto filter = FilterOperator::FromPredicate(pred);
    auto keymap = MapOperator::KeyByAttribute(0, key_attr);

    // Key attributes stay integral (ids, timestamps); the measurement
    // attributes the filter looks at may still be NaN / ±inf.
    MessageBatch batch;
    const size_t n = rng() % 65;
    std::vector<Tuple> inputs;
    for (size_t i = 0; i < n; ++i) {
      inputs.emplace_back(RandomEvent(rng, /*non_finite=*/true));
      batch.push_back(Message::Data(0, inputs.back()));
    }

    VectorCollector compiled_out;
    ASSERT_TRUE(compiled.ProcessBatch(0, &batch, &compiled_out).ok());

    VectorCollector interpreted_out;
    for (const Tuple& tuple : inputs) {
      VectorCollector filtered;
      ASSERT_TRUE(filter->Process(0, tuple, &filtered).ok());
      for (Tuple& survivor : filtered.tuples) {
        ASSERT_TRUE(
            keymap->Process(0, std::move(survivor), &interpreted_out).ok());
      }
    }

    EXPECT_EQ(Multiset(compiled_out.tuples), Multiset(interpreted_out.tuples))
        << pred.ToString();
  }
}

TEST(ExprPropertyTest, FusedConstantKeyIsExactInt64) {
  std::mt19937_64 rng(0x5ea0004);
  // Keys beyond 2^53 do not round-trip through a double; the compiled
  // program must keep them exact via the int64 key pool, matching
  // MapOperator::AssignConstantKey.
  const int64_t keys[] = {0, -1, 42, (int64_t{1} << 62) + 1,
                          std::numeric_limits<int64_t>::min()};
  for (int64_t key : keys) {
    const Predicate pred = RandomPredicate(rng, 2);
    ExprProgram fused = ExprProgram::Fuse(
        ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast),
        ExprProgram::KeyByConstant(key));
    ASSERT_TRUE(fused.ok());
    CompiledStatelessOperator compiled(std::move(fused), "filter+key");
    auto filter = FilterOperator::FromPredicate(pred);
    auto keymap = MapOperator::AssignConstantKey(key);

    for (int sample = 0; sample < 50; ++sample) {
      const Tuple input((RandomEvent(rng, /*non_finite=*/true)));
      VectorCollector compiled_out;
      ASSERT_TRUE(compiled.Process(0, input, &compiled_out).ok());
      VectorCollector interpreted_out;
      VectorCollector filtered;
      ASSERT_TRUE(filter->Process(0, input, &filtered).ok());
      for (Tuple& survivor : filtered.tuples) {
        ASSERT_TRUE(
            keymap->Process(0, std::move(survivor), &interpreted_out).ok());
      }
      ASSERT_EQ(compiled_out.tuples.size(), interpreted_out.tuples.size());
      for (size_t i = 0; i < compiled_out.tuples.size(); ++i) {
        EXPECT_EQ(compiled_out.tuples[i].key(), key);
        EXPECT_EQ(interpreted_out.tuples[i].key(), key);
      }
    }
  }
}

TEST(ExprPropertyTest, PoolOverflowFallsBackToNotOk) {
  // More than 255 distinct constants cannot be pooled behind an 8-bit
  // immediate; compilation must report !ok() so callers keep the
  // interpreted operator instead of running a broken program.
  Predicate pred;
  for (int i = 0; i < 300; ++i) {
    pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt,
                                   1000.0 + i));
  }
  const ExprProgram program =
      ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast);
  EXPECT_FALSE(program.ok());
}

}  // namespace
}  // namespace cep2asp
