#include <gtest/gtest.h>

#include "cep/shared_buffer.h"
#include "cluster/calibration.h"
#include "cluster/sim.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

SimJobSpec BaseJob(SimApproach approach) {
  SimJobSpec job;
  job.approach = approach;
  job.pattern_length = 3;
  job.num_streams = 3;
  job.filter_selectivity = 0.25;
  job.step_selectivity = 0.05;
  job.window_ms = 15 * kMin;
  job.slide_ms = kMin;
  job.num_keys = 64;
  return job;
}

ClusterSpec OneWorker() {
  ClusterSpec cluster;
  cluster.num_workers = 1;
  cluster.slots_per_worker = 16;
  cluster.memory_per_worker_bytes = 100.0 * 1024 * 1024 * 1024;
  return cluster;
}

// --- SharedBuffer (FCEP state layer) ------------------------------------------

TEST(SharedBufferTest, AppendAndExtract) {
  SharedBuffer buffer;
  SimpleEvent a = test::Ev(0, 1, 10, 1);
  SimpleEvent b = test::Ev(1, 1, 20, 2);
  auto e1 = buffer.Append(a, SharedBuffer::kNoEntry);
  auto e2 = buffer.Append(b, e1);
  auto path = buffer.ExtractPath(e2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].ts, 10);
  EXPECT_EQ(path[1].ts, 20);
}

TEST(SharedBufferTest, BranchesSharePrefix) {
  SharedBuffer buffer;
  auto e1 = buffer.Append(test::Ev(0, 1, 10, 1), SharedBuffer::kNoEntry);
  auto left = buffer.Append(test::Ev(1, 1, 20, 2), e1);
  auto right = buffer.Append(test::Ev(1, 1, 30, 3), e1);
  // Prefix stored once: three entries, not four.
  EXPECT_EQ(buffer.num_entries(), 3u);
  EXPECT_EQ(buffer.ExtractPath(left)[0].ts, 10);
  EXPECT_EQ(buffer.ExtractPath(right)[0].ts, 10);
}

TEST(SharedBufferTest, ReleaseCascades) {
  SharedBuffer buffer;
  auto e1 = buffer.Append(test::Ev(0, 1, 10, 1), SharedBuffer::kNoEntry);
  auto e2 = buffer.Append(test::Ev(1, 1, 20, 2), e1);
  buffer.Release(e1);  // run 1 drops its tip; chain ref from e2 keeps e1
  EXPECT_EQ(buffer.num_entries(), 2u);
  buffer.Release(e2);  // releases e2, cascades into e1
  EXPECT_EQ(buffer.num_entries(), 0u);
}

TEST(SharedBufferTest, EventAtPositionWalksChain) {
  SharedBuffer buffer;
  auto e1 = buffer.Append(test::Ev(0, 1, 10, 1), SharedBuffer::kNoEntry);
  auto e2 = buffer.Append(test::Ev(1, 1, 20, 2), e1);
  auto e3 = buffer.Append(test::Ev(2, 1, 30, 3), e2);
  EXPECT_EQ(buffer.EventAtPosition(e3, 3, 0).ts, 10);
  EXPECT_EQ(buffer.EventAtPosition(e3, 3, 1).ts, 20);
  EXPECT_EQ(buffer.EventAtPosition(e3, 3, 2).ts, 30);
}

// --- Cost model & calibration ----------------------------------------------------

TEST(CalibrationTest, ProducesPositiveConstants) {
  CostProfile profile = CalibrateCostProfile();
  EXPECT_GT(profile.stateless_ns, 0);
  EXPECT_GT(profile.buffer_insert_ns, 0);
  EXPECT_GT(profile.join_pair_ns, 0);
  EXPECT_GT(profile.aggregate_event_ns, 0);
  EXPECT_GT(profile.cep_event_ns, 0);
  EXPECT_GT(profile.cep_run_check_ns, 0);
  // Sanity: nothing runs in sub-nanosecond or multi-millisecond regimes.
  EXPECT_LT(profile.stateless_ns, 1e6);
  EXPECT_LT(profile.join_pair_ns, 1e6);
}

// --- Cluster simulator -------------------------------------------------------------

TEST(ClusterSimTest, SustainableRateIsMonotoneFeasible) {
  ClusterSimulator sim(OneWorker(), CostProfile{});
  SimJobSpec job = BaseJob(SimApproach::kFaspSliding);
  double max_tps = sim.FindMaxSustainableTps(job, 64e6);
  ASSERT_GT(max_tps, 0);
  SimResult below = sim.Run(job, max_tps * 0.9, 1800.0);
  EXPECT_FALSE(below.failed);
  EXPECT_FALSE(below.backpressured);
  SimResult above = sim.Run(job, max_tps * 1.5, 1800.0);
  EXPECT_TRUE(above.failed || above.backpressured);
}

TEST(ClusterSimTest, FaspOutperformsFcep) {
  // The paper's headline single-worker ordering (§5.2.3).
  ClusterSimulator sim(OneWorker(), CostProfile{});
  double fcep = sim.FindMaxSustainableTps(BaseJob(SimApproach::kFcep), 64e6);
  double fasp =
      sim.FindMaxSustainableTps(BaseJob(SimApproach::kFaspSliding), 64e6);
  double interval =
      sim.FindMaxSustainableTps(BaseJob(SimApproach::kFaspInterval), 64e6);
  EXPECT_GT(fasp, fcep);
  EXPECT_GT(interval, fcep);
}

TEST(ClusterSimTest, FcepFailsOnMemoryAtHighRate) {
  ClusterSpec small = OneWorker();
  small.memory_per_worker_bytes = 16.0 * 1024 * 1024 * 1024;
  ClusterSimulator sim(small, CostProfile{});
  SimResult result = sim.Run(BaseJob(SimApproach::kFcep), 8e6, 1800.0);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(ClusterSimTest, ScaleOutRaisesCapacity) {
  // Figure 6 mechanism: more workers -> more slots and memory.
  CostProfile costs;
  SimJobSpec job = BaseJob(SimApproach::kFaspSliding);
  job.num_keys = 128;
  double last = 0;
  for (int workers : {1, 2, 4}) {
    ClusterSpec cluster = OneWorker();
    cluster.num_workers = workers;
    ClusterSimulator sim(cluster, costs);
    double tps = sim.FindMaxSustainableTps(job, 256e6);
    EXPECT_GT(tps, last);
    last = tps;
  }
}

TEST(ClusterSimTest, KeyImbalanceBoundsThroughputNearSlotCount) {
  // With keys == slots, hash imbalance leaves some slots idle; many keys
  // smooth the load (Figure 4: FASP gains from 16 -> 128 keys).
  CostProfile costs;
  ClusterSimulator sim(OneWorker(), costs);
  SimJobSpec few = BaseJob(SimApproach::kFaspSliding);
  few.num_keys = 16;
  SimJobSpec many = BaseJob(SimApproach::kFaspSliding);
  many.num_keys = 128;
  double few_tps = sim.FindMaxSustainableTps(few, 64e6);
  double many_tps = sim.FindMaxSustainableTps(many, 64e6);
  EXPECT_GT(many_tps, few_tps);
}

TEST(ClusterSimTest, TimelineRampsToSteadyState) {
  ClusterSimulator sim(OneWorker(), CostProfile{});
  SimJobSpec job = BaseJob(SimApproach::kFaspSliding);
  SimResult result = sim.Run(job, 1e6, 3600.0, 60.0);
  ASSERT_FALSE(result.timeline.empty());
  // Memory grows during the first window, then plateaus.
  EXPECT_LT(result.timeline.front().memory_bytes,
            result.timeline.back().memory_bytes);
  size_t mid = result.timeline.size() / 2;
  EXPECT_NEAR(result.timeline[mid].memory_bytes,
              result.timeline.back().memory_bytes,
              0.05 * result.timeline.back().memory_bytes);
}

TEST(ClusterSimTest, FcepMemoryCreepsOverTime) {
  // The NFA's lazily reclaimed partial matches creep upward (§5.2.4);
  // the join pipeline plateaus.
  ClusterSimulator sim(OneWorker(), CostProfile{});
  SimResult fcep = sim.Run(BaseJob(SimApproach::kFcep), 2e5, 3600.0, 60.0);
  ASSERT_FALSE(fcep.timeline.empty());
  size_t mid = fcep.timeline.size() / 2;
  EXPECT_GT(fcep.timeline.back().memory_bytes,
            fcep.timeline[mid].memory_bytes * 1.02);
}

TEST(ClusterSimTest, AggregateApproachIsCheapest) {
  // O2 for iterations (Figure 4: FASP-O2+O3 on top).
  ClusterSimulator sim(OneWorker(), CostProfile{});
  SimJobSpec iter = BaseJob(SimApproach::kFaspSliding);
  iter.pattern_length = 4;
  iter.num_streams = 1;
  iter.window_ms = 90 * kMin;
  double sliding = sim.FindMaxSustainableTps(iter, 64e6);
  iter.approach = SimApproach::kFaspAggregate;
  double aggregate = sim.FindMaxSustainableTps(iter, 256e6);
  EXPECT_GT(aggregate, sliding);
}

}  // namespace
}  // namespace cep2asp
