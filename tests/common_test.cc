#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/result.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "common/strings.h"

namespace cep2asp {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, CopyPreservesContent) {
  Status original = Status::NotFound("missing");
  Status copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_TRUE(copy.IsNotFound());
}

TEST(StatusTest, MovedFromIsReusable) {
  Status st = Status::Internal("x");
  Status moved = std::move(st);
  EXPECT_FALSE(moved.ok());
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IoError("open failed").WithContext("csv reader");
  EXPECT_EQ(st.message(), "csv reader: open failed");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st = Status::OK().WithContext("ctx");
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::AlreadyExists("x").code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(Status::OutOfRange("x").code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(Status::FailedPrecondition("x").code() ==
              StatusCode::kFailedPrecondition);
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    CEP2ASP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

// --- Result ------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 5; };
  auto consume = [&]() -> Status {
    CEP2ASP_ASSIGN_OR_RETURN(int v, produce());
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(consume().ok());
}

// --- Strings -----------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  auto pieces = SplitString("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = SplitString("a,,c,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("WiThIn", "within"));
  EXPECT_FALSE(EqualsIgnoreCase("within", "withi"));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-2", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_FALSE(ParseDouble("3.25x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseInt64) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("123456789012", &v));
  EXPECT_EQ(v, 123456789012LL);
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, HumanCount) {
  EXPECT_EQ(HumanCount(1530000), "1.53M");
  EXPECT_EQ(HumanCount(1500), "1.5k");
  EXPECT_EQ(HumanCount(12), "12");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(2.5 * 1024 * 1024), "2.50 MB");
  EXPECT_EQ(HumanBytes(512), "512 B");
}

// --- SmallVector ---------------------------------------------------------------

TEST(SmallVectorTest, InlineStorage) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  EXPECT_EQ(v[3], 3);
}

TEST(SmallVectorTest, SpillsToHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVectorTest, CopyIndependent) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 2> b = a;
  b.push_back(4);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(SmallVectorTest, MoveTransfersHeap) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  SmallVector<int, 2> b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b[9], 9);
}

TEST(SmallVectorTest, AppendOther) {
  SmallVector<int, 4> a{1, 2};
  SmallVector<int, 4> b{3, 4, 5};
  a.append(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a[4], 5);
}

TEST(SmallVectorTest, IterationAndClear) {
  SmallVector<int, 4> v{5, 6, 7};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 18);
  v.clear();
  EXPECT_TRUE(v.empty());
}

// --- Clock --------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMillis(), 100);
  clock.AdvanceMillis(50);
  EXPECT_EQ(clock.NowMillis(), 150);
  clock.SetMillis(10);
  EXPECT_EQ(clock.NowMillis(), 10);
}

TEST(ClockTest, SystemClockMonotone) {
  SystemClock* clock = SystemClock::Get();
  int64_t a = clock->NowNanos();
  int64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace cep2asp
