#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/chain_rules.h"
#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "harness/paper_patterns.h"
#include "runtime/executor.h"
#include "runtime/job_graph.h"
#include "runtime/sink.h"
#include "runtime/threaded_executor.h"
#include "runtime/vector_source.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kWin = 10000;
constexpr Timestamp kSlide = 1000;

// --- pattern-layer helpers --------------------------------------------------

Pattern SeqPattern(Predicate cross = Predicate(), Timestamp window = kWin,
                   Timestamp slide = kSlide) {
  auto root = std::make_unique<PatternNode>();
  root->op = PatternOp::kSeq;
  root->children.push_back(PatternBuilder::Atom(0, "e1"));
  root->children.push_back(PatternBuilder::Atom(1, "e2"));
  Pattern p(std::move(root), std::move(cross), window);
  p.set_slide(slide);
  return p;
}

// --- plan-layer helpers -----------------------------------------------------

std::unique_ptr<LogicalOp> Leaf(int position, int64_t key = 0) {
  auto scan = std::make_unique<LogicalOp>();
  scan->kind = LogicalOpKind::kScan;
  scan->scan_type = static_cast<EventTypeId>(position);
  scan->positions = {position};
  auto key_op = std::make_unique<LogicalOp>();
  key_op->kind = LogicalOpKind::kKeyByConst;
  key_op->const_key = key;
  key_op->positions = {position};
  key_op->inputs.push_back(std::move(scan));
  return key_op;
}

std::unique_ptr<LogicalOp> Join(std::unique_ptr<LogicalOp> left,
                                std::unique_ptr<LogicalOp> right,
                                bool dedup_pairs = false,
                                bool order_predicate = true) {
  auto join = std::make_unique<LogicalOp>();
  join->kind = LogicalOpKind::kWindowJoin;
  join->window = SlidingWindowSpec{kWin, kSlide};
  join->dedup_pairs = dedup_pairs;
  join->positions = left->positions;
  join->positions.insert(join->positions.end(), right->positions.begin(),
                         right->positions.end());
  if (order_predicate) {
    const int left_arity = static_cast<int>(left->positions.size());
    const int arity = static_cast<int>(join->positions.size());
    for (int l = 0; l < left_arity; ++l) {
      for (int r = left_arity; r < arity; ++r) {
        join->predicate.Add(Comparison::AttrAttr({l, Attribute::kTs},
                                                 CmpOp::kLt,
                                                 {r, Attribute::kTs}));
      }
    }
  }
  join->inputs.push_back(std::move(left));
  join->inputs.push_back(std::move(right));
  return join;
}

LogicalPlan OneJoinPlan() {
  LogicalPlan plan;
  plan.root = Join(Leaf(0), Leaf(1));
  plan.window_size = kWin;
  plan.slide = kSlide;
  return plan;
}

LogicalOp* RootJoinOf(LogicalPlan* plan) { return plan->root.get(); }

// --- graph-layer helpers ----------------------------------------------------

std::unique_ptr<VectorSource> EmptySource(const std::string& name) {
  return std::make_unique<VectorSource>(name, std::vector<SimpleEvent>{});
}

/// Minimal operator whose traits are freely configurable; lets graph tests
/// exercise rules no shipped operator violates.
class FakeOp : public Operator {
 public:
  explicit FakeOp(OperatorTraits traits, size_t state_bytes = 0)
      : traits_(traits), state_bytes_(state_bytes) {}

  std::string name() const override { return "fake"; }
  OperatorTraits Traits() const override { return traits_; }
  Status Process(int, Tuple tuple, Collector* out) override {
    out->Emit(std::move(tuple));
    return Status::OK();
  }
  size_t StateBytes() const override { return state_bytes_; }

 private:
  OperatorTraits traits_;
  size_t state_bytes_;
};

/// source -> keyed join (both ports via key-assigning maps) -> sink.
struct KeyedJoinGraph {
  JobGraph graph;
  NodeId join = -1;
  NodeId sink = -1;
};

KeyedJoinGraph MakeKeyedJoinGraph(SlidingWindowSpec spec = {kWin, kSlide}) {
  KeyedJoinGraph g;
  NodeId s1 = g.graph.AddSource(EmptySource("s1"));
  NodeId s2 = g.graph.AddSource(EmptySource("s2"));
  NodeId k1 = g.graph.AddOperatorAfter(s1, MapOperator::AssignConstantKey(0));
  NodeId k2 = g.graph.AddOperatorAfter(s2, MapOperator::AssignConstantKey(0));
  g.join = g.graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
      spec, Predicate(), TimestampMode::kMax));
  EXPECT_TRUE(g.graph.Connect(k1, g.join, 0).ok());
  EXPECT_TRUE(g.graph.Connect(k2, g.join, 1).ok());
  g.sink = g.graph.AddOperatorAfter(g.join, std::make_unique<CollectSink>());
  return g;
}

// === pattern rules (1xx) ====================================================

TEST(PatternRulesTest, E100NoRoot) {
  Pattern empty;
  EXPECT_TRUE(AnalyzePattern(empty).Has(DiagnosticCode::kPatternNoRoot));
  EXPECT_FALSE(
      AnalyzePattern(SeqPattern()).Has(DiagnosticCode::kPatternNoRoot));
}

TEST(PatternRulesTest, E101WindowNotPositive) {
  EXPECT_TRUE(AnalyzePattern(SeqPattern(Predicate(), /*window=*/0))
                  .Has(DiagnosticCode::kPatternWindowNotPositive));
  EXPECT_FALSE(AnalyzePattern(SeqPattern())
                   .Has(DiagnosticCode::kPatternWindowNotPositive));
}

TEST(PatternRulesTest, E102SlideInvalid) {
  // Slide exceeding the window skips events entirely.
  EXPECT_TRUE(AnalyzePattern(SeqPattern(Predicate(), kWin, /*slide=*/2 * kWin))
                  .Has(DiagnosticCode::kPatternSlideInvalid));
  EXPECT_TRUE(AnalyzePattern(SeqPattern(Predicate(), kWin, /*slide=*/0))
                  .Has(DiagnosticCode::kPatternSlideInvalid));
  EXPECT_FALSE(
      AnalyzePattern(SeqPattern()).Has(DiagnosticCode::kPatternSlideInvalid));
}

TEST(PatternRulesTest, W103FilterUnsatisfiable) {
  // value > 50 AND value < 10 has an empty solution set.
  Predicate contradiction;
  contradiction.Add(
      Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 50));
  contradiction.Add(
      Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 10));
  Pattern bad(PatternBuilder::Atom(0, "e1", contradiction), Predicate(), kWin);
  bad.set_slide(kSlide);
  EXPECT_TRUE(
      AnalyzePattern(bad).Has(DiagnosticCode::kPatternFilterUnsatisfiable));

  // value == 5 AND value != 5.
  Predicate eq_ne;
  eq_ne.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kEq, 5));
  eq_ne.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kNe, 5));
  Pattern bad2(PatternBuilder::Atom(0, "e1", eq_ne), Predicate(), kWin);
  bad2.set_slide(kSlide);
  EXPECT_TRUE(
      AnalyzePattern(bad2).Has(DiagnosticCode::kPatternFilterUnsatisfiable));

  Predicate fine;
  fine.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 10));
  fine.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 50));
  Pattern good(PatternBuilder::Atom(0, "e1", fine), Predicate(), kWin);
  good.set_slide(kSlide);
  EXPECT_FALSE(
      AnalyzePattern(good).Has(DiagnosticCode::kPatternFilterUnsatisfiable));
}

TEST(PatternRulesTest, E104IterCountInvalid) {
  Pattern bad(PatternBuilder::Iter(0, "v", /*m=*/0), Predicate(), kWin);
  bad.set_slide(kSlide);
  EXPECT_TRUE(AnalyzePattern(bad).Has(DiagnosticCode::kPatternIterCountInvalid));

  Pattern good(PatternBuilder::Iter(0, "v", /*m=*/2), Predicate(), kWin);
  good.set_slide(kSlide);
  EXPECT_FALSE(
      AnalyzePattern(good).Has(DiagnosticCode::kPatternIterCountInvalid));
}

TEST(PatternRulesTest, W105IterConstraintUnused) {
  ConsecutiveConstraint c{Attribute::kValue, CmpOp::kLt};
  Pattern bad(PatternBuilder::Iter(0, "v", /*m=*/1, Predicate(), c),
              Predicate(), kWin);
  bad.set_slide(kSlide);
  EXPECT_TRUE(
      AnalyzePattern(bad).Has(DiagnosticCode::kPatternIterConstraintUnused));

  // m >= 2 has consecutive pairs; m == 1 unbounded can grow beyond one.
  Pattern good(PatternBuilder::Iter(0, "v", /*m=*/2, Predicate(), c),
               Predicate(), kWin);
  good.set_slide(kSlide);
  EXPECT_FALSE(
      AnalyzePattern(good).Has(DiagnosticCode::kPatternIterConstraintUnused));
  Pattern unbounded(PatternBuilder::Iter(0, "v", /*m=*/1, Predicate(), c,
                                         /*unbounded=*/true),
                    Predicate(), kWin);
  unbounded.set_slide(kSlide);
  EXPECT_FALSE(AnalyzePattern(unbounded)
                   .Has(DiagnosticCode::kPatternIterConstraintUnused));
}

TEST(PatternRulesTest, E106PredicateVarOutOfRange) {
  Predicate cross;
  cross.Add(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLt,
                                 {5, Attribute::kValue}));
  EXPECT_TRUE(AnalyzePattern(SeqPattern(cross))
                  .Has(DiagnosticCode::kPatternPredicateVarOutOfRange));

  Predicate in_range;
  in_range.Add(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLt,
                                    {1, Attribute::kValue}));
  EXPECT_FALSE(AnalyzePattern(SeqPattern(in_range))
                   .Has(DiagnosticCode::kPatternPredicateVarOutOfRange));
}

TEST(PatternRulesTest, W107PushdownMissed) {
  Predicate single_var;
  single_var.Add(
      Comparison::AttrConst({1, Attribute::kValue}, CmpOp::kGt, 10));
  EXPECT_TRUE(AnalyzePattern(SeqPattern(single_var))
                  .Has(DiagnosticCode::kPatternPushdownMissed));

  Predicate cross;
  cross.Add(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLt,
                                 {1, Attribute::kValue}));
  EXPECT_FALSE(AnalyzePattern(SeqPattern(cross))
                   .Has(DiagnosticCode::kPatternPushdownMissed));
}

// === plan rules (2xx) =======================================================

TEST(PlanRulesTest, ValidSingleJoinPlanIsClean) {
  LogicalPlan plan = OneJoinPlan();
  EXPECT_TRUE(AnalyzeLogicalPlan(plan).empty())
      << AnalyzeLogicalPlan(plan).ToString();
}

TEST(PlanRulesTest, E200NodeMalformed) {
  LogicalPlan plan = OneJoinPlan();
  RootJoinOf(&plan)->inputs.pop_back();  // a join with one input
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanNodeMalformed));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanNodeMalformed));
}

TEST(PlanRulesTest, E201WindowSpanMismatch) {
  LogicalPlan plan = OneJoinPlan();
  RootJoinOf(&plan)->window.size = kWin / 2;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanWindowSpanMismatch));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanWindowSpanMismatch));
}

TEST(PlanRulesTest, E202WindowSpecInvalid) {
  LogicalPlan plan = OneJoinPlan();
  RootJoinOf(&plan)->window.slide = 0;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanWindowSpecInvalid));

  // Plan-level window parameters are checked too.
  LogicalPlan bad_plan = OneJoinPlan();
  bad_plan.slide = 0;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(bad_plan).Has(DiagnosticCode::kPlanWindowSpecInvalid));

  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanWindowSpecInvalid));
}

TEST(PlanRulesTest, E203PredicateIndexOutOfRange) {
  LogicalPlan plan = OneJoinPlan();
  RootJoinOf(&plan)->predicate.Add(Comparison::AttrAttr(
      {0, Attribute::kTs}, CmpOp::kLt, {5, Attribute::kTs}));
  EXPECT_TRUE(AnalyzeLogicalPlan(plan).Has(
      DiagnosticCode::kPlanPredicateIndexOutOfRange));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanPredicateIndexOutOfRange));
}

TEST(PlanRulesTest, W213KeyAttrNonIntegral) {
  // Rewrite a leaf's key stage into an attribute key over a continuous
  // measurement: key extraction would truncate double -> int64.
  LogicalPlan plan = OneJoinPlan();
  LogicalOp* key_op = RootJoinOf(&plan)->inputs[0].get();
  key_op->kind = LogicalOpKind::kKeyByAttr;
  key_op->key_attr = Attribute::kValue;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanKeyAttrNonIntegral));

  // Integral attributes (ids, timestamps) key exactly — no warning.
  key_op->key_attr = Attribute::kId;
  EXPECT_FALSE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanKeyAttrNonIntegral));
}

TEST(PlanRulesTest, E204SeqOrderLost) {
  const Pattern pattern = SeqPattern();

  LogicalPlan unordered;
  unordered.root = Join(Leaf(0), Leaf(1), /*dedup_pairs=*/false,
                        /*order_predicate=*/false);
  unordered.window_size = kWin;
  unordered.slide = kSlide;
  EXPECT_TRUE(AnalyzeLogicalPlan(unordered, &pattern)
                  .Has(DiagnosticCode::kPlanSeqOrderLost));

  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan(), &pattern)
                   .Has(DiagnosticCode::kPlanSeqOrderLost));

  // Without the pattern the required order is unknown; the rule is skipped.
  EXPECT_FALSE(
      AnalyzeLogicalPlan(unordered).Has(DiagnosticCode::kPlanSeqOrderLost));
}

TEST(PlanRulesTest, E205IntermediateJoinDuplicates) {
  // Two-join chain: the inner join must deduplicate per-window pairs.
  LogicalPlan bad;
  bad.root = Join(Join(Leaf(0), Leaf(1), /*dedup_pairs=*/false), Leaf(2));
  bad.window_size = kWin;
  bad.slide = kSlide;
  EXPECT_TRUE(AnalyzeLogicalPlan(bad).Has(
      DiagnosticCode::kPlanIntermediateJoinDuplicates));

  LogicalPlan good;
  good.root = Join(Join(Leaf(0), Leaf(1), /*dedup_pairs=*/true), Leaf(2));
  good.window_size = kWin;
  good.slide = kSlide;
  EXPECT_FALSE(AnalyzeLogicalPlan(good).Has(
      DiagnosticCode::kPlanIntermediateJoinDuplicates));
}

TEST(PlanRulesTest, W206RootJoinDeduplicated) {
  LogicalPlan plan = OneJoinPlan();
  RootJoinOf(&plan)->dedup_pairs = true;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanRootJoinDeduplicated));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanRootJoinDeduplicated));
}

TEST(PlanRulesTest, E207JoinKeyMismatch) {
  LogicalPlan plan;
  plan.root = Join(Leaf(0, /*key=*/0), Leaf(1, /*key=*/1));
  plan.window_size = kWin;
  plan.slide = kSlide;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanJoinKeyMismatch));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanJoinKeyMismatch));
}

TEST(PlanRulesTest, W208JoinInputUnkeyed) {
  auto bare_scan = std::make_unique<LogicalOp>();
  bare_scan->kind = LogicalOpKind::kScan;
  bare_scan->positions = {1};
  LogicalPlan plan;
  plan.root = Join(Leaf(0), std::move(bare_scan));
  plan.window_size = kWin;
  plan.slide = kSlide;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanJoinInputUnkeyed));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanJoinInputUnkeyed));
}

LogicalPlan AggregatePlan(int64_t min_count) {
  LogicalPlan plan;
  auto agg = std::make_unique<LogicalOp>();
  agg->kind = LogicalOpKind::kAggregate;
  agg->window = SlidingWindowSpec{kWin, kSlide};
  agg->min_count = min_count;
  agg->positions = {0};
  agg->inputs.push_back(Leaf(0));
  plan.root = std::move(agg);
  plan.window_size = kWin;
  plan.slide = kSlide;
  return plan;
}

TEST(PlanRulesTest, W209AggregateMinCountInvalid) {
  EXPECT_TRUE(AnalyzeLogicalPlan(AggregatePlan(0))
                  .Has(DiagnosticCode::kPlanAggregateMinCountInvalid));
  EXPECT_FALSE(AnalyzeLogicalPlan(AggregatePlan(3))
                   .Has(DiagnosticCode::kPlanAggregateMinCountInvalid));
}

LogicalPlan ReorderPlan(std::vector<int> permutation) {
  LogicalPlan plan;
  auto reorder = std::make_unique<LogicalOp>();
  reorder->kind = LogicalOpKind::kReorder;
  reorder->reorder_permutation = std::move(permutation);
  reorder->positions = {0, 1};
  reorder->inputs.push_back(Join(Leaf(0), Leaf(1)));
  plan.root = std::move(reorder);
  plan.window_size = kWin;
  plan.slide = kSlide;
  return plan;
}

TEST(PlanRulesTest, E210ReorderInvalid) {
  EXPECT_TRUE(AnalyzeLogicalPlan(ReorderPlan({0, 0}))
                  .Has(DiagnosticCode::kPlanReorderInvalid));
  EXPECT_FALSE(AnalyzeLogicalPlan(ReorderPlan({1, 0}))
                   .Has(DiagnosticCode::kPlanReorderInvalid));
}

TEST(PlanRulesTest, E211UnionArityMismatch) {
  LogicalPlan plan;
  auto union_op = std::make_unique<LogicalOp>();
  union_op->kind = LogicalOpKind::kUnion;
  union_op->positions = {0};
  union_op->inputs.push_back(Leaf(0));
  union_op->inputs.push_back(Join(Leaf(1), Leaf(2), /*dedup_pairs=*/true));
  plan.root = std::move(union_op);
  plan.window_size = kWin;
  plan.slide = kSlide;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanUnionArityMismatch));

  LogicalPlan good;
  auto ok_union = std::make_unique<LogicalOp>();
  ok_union->kind = LogicalOpKind::kUnion;
  ok_union->positions = {0};
  ok_union->inputs.push_back(Leaf(0));
  ok_union->inputs.push_back(Leaf(0));
  good.root = std::move(ok_union);
  good.window_size = kWin;
  good.slide = kSlide;
  EXPECT_FALSE(
      AnalyzeLogicalPlan(good).Has(DiagnosticCode::kPlanUnionArityMismatch));
}

TEST(PlanRulesTest, E212JoinPositionsOverlap) {
  LogicalPlan plan;
  plan.root = Join(Leaf(0), Leaf(0));
  plan.window_size = kWin;
  plan.slide = kSlide;
  EXPECT_TRUE(
      AnalyzeLogicalPlan(plan).Has(DiagnosticCode::kPlanJoinPositionsOverlap));
  EXPECT_FALSE(AnalyzeLogicalPlan(OneJoinPlan())
                   .Has(DiagnosticCode::kPlanJoinPositionsOverlap));
}

// === graph rules (3xx) ======================================================

TEST(GraphRulesTest, ValidKeyedJoinGraphIsClean) {
  KeyedJoinGraph g = MakeKeyedJoinGraph();
  DiagnosticReport report = AnalyzeJobGraph(g.graph);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(GraphRulesTest, E301InputPortUnfed) {
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(src, u, 0).ok());  // port 1 stays unfed
  graph.AddOperatorAfter(u, std::make_unique<CollectSink>());
  EXPECT_TRUE(
      AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphInputPortUnfed));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphInputPortUnfed));
}

TEST(GraphRulesTest, E302InputPortMultiplyFed) {
  JobGraph graph;
  NodeId a = graph.AddSource(EmptySource("a"));
  NodeId b = graph.AddSource(EmptySource("b"));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(1));
  ASSERT_TRUE(graph.Connect(a, u, 0).ok());
  ASSERT_TRUE(graph.Connect(b, u, 0).ok());  // same port twice
  graph.AddOperatorAfter(u, std::make_unique<CollectSink>());
  EXPECT_TRUE(
      AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphInputPortMultiplyFed));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphInputPortMultiplyFed));
}

TEST(GraphRulesTest, E303Cycle) {
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId a = graph.AddOperator(std::make_unique<UnionOperator>(2));
  NodeId b = graph.AddOperator(std::make_unique<UnionOperator>(1));
  ASSERT_TRUE(graph.Connect(src, a, 0).ok());
  ASSERT_TRUE(graph.Connect(a, b, 0).ok());
  ASSERT_TRUE(graph.Connect(b, a, 1).ok());
  EXPECT_TRUE(AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphCycle));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphCycle));
}

TEST(GraphRulesTest, E304NoSource) {
  JobGraph graph;
  graph.AddOperator(std::make_unique<CollectSink>());
  EXPECT_TRUE(AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphNoSource));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphNoSource));
}

TEST(GraphRulesTest, W305SourceUnconnected) {
  KeyedJoinGraph g = MakeKeyedJoinGraph();
  g.graph.AddSource(EmptySource("dangling"));
  EXPECT_TRUE(
      AnalyzeJobGraph(g.graph).Has(DiagnosticCode::kGraphSourceUnconnected));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphSourceUnconnected));
}

TEST(GraphRulesTest, W306OperatorUnreachable) {
  // A two-operator island: every port is fed, but no source reaches it.
  KeyedJoinGraph g = MakeKeyedJoinGraph();
  NodeId a = g.graph.AddOperator(std::make_unique<UnionOperator>(1));
  NodeId b = g.graph.AddOperator(std::make_unique<UnionOperator>(1));
  ASSERT_TRUE(g.graph.Connect(a, b, 0).ok());
  ASSERT_TRUE(g.graph.Connect(b, a, 0).ok());
  EXPECT_TRUE(
      AnalyzeJobGraph(g.graph).Has(DiagnosticCode::kGraphOperatorUnreachable));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphOperatorUnreachable));
}

TEST(GraphRulesTest, W307TerminalNotSink) {
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  graph.AddOperatorAfter(src, std::make_unique<UnionOperator>(1));
  EXPECT_TRUE(
      AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphTerminalNotSink));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphTerminalNotSink));
}

TEST(GraphRulesTest, W308StatefulUnkeyed) {
  JobGraph graph;
  NodeId s1 = graph.AddSource(EmptySource("s1"));
  NodeId s2 = graph.AddSource(EmptySource("s2"));
  NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{kWin, kSlide}, Predicate(), TimestampMode::kMax));
  ASSERT_TRUE(graph.Connect(s1, join, 0).ok());  // no key-assigning maps
  ASSERT_TRUE(graph.Connect(s2, join, 1).ok());
  graph.AddOperatorAfter(join, std::make_unique<CollectSink>());
  EXPECT_TRUE(
      AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphStatefulUnkeyed));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphStatefulUnkeyed));
}

TEST(GraphRulesTest, E309FanInAccountingBroken) {
  KeyedJoinGraph g = MakeKeyedJoinGraph();
  g.graph.mutable_node(g.sink).num_input_edges = 5;
  EXPECT_TRUE(AnalyzeJobGraph(g.graph).Has(
      DiagnosticCode::kGraphFanInAccountingBroken));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphFanInAccountingBroken));
}

TEST(GraphRulesTest, E310WindowSpanMismatch) {
  // Two sliding joins in one job disagreeing on the window spec.
  KeyedJoinGraph g = MakeKeyedJoinGraph(SlidingWindowSpec{kWin, kSlide});
  NodeId s3 = g.graph.AddSource(EmptySource("s3"));
  NodeId k3 = g.graph.AddOperatorAfter(s3, MapOperator::AssignConstantKey(0));
  NodeId join2 =
      g.graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
          SlidingWindowSpec{2 * kWin, kSlide}, Predicate(),
          TimestampMode::kMax));
  ASSERT_TRUE(g.graph.Connect(g.sink, join2, 0).ok());
  ASSERT_TRUE(g.graph.Connect(k3, join2, 1).ok());
  g.graph.AddOperatorAfter(join2, std::make_unique<CollectSink>());
  EXPECT_TRUE(
      AnalyzeJobGraph(g.graph).Has(DiagnosticCode::kGraphWindowSpanMismatch));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphWindowSpanMismatch));
}

TEST(GraphRulesTest, E311WindowSpecInvalid) {
  OperatorTraits traits;
  traits.stateful = true;
  traits.windowed = true;
  traits.window_size = 0;  // windowed but spans no time
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId bad = graph.AddOperatorAfter(src, std::make_unique<FakeOp>(traits));
  graph.AddOperatorAfter(bad, std::make_unique<CollectSink>());
  EXPECT_TRUE(
      AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphWindowSpecInvalid));
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphWindowSpecInvalid));
}

/// MakeKeyedJoinGraph with the join expanded into subtasks and both input
/// edges hash-partitioned — the shape the translator emits for parallel O3.
KeyedJoinGraph MakeParallelKeyedJoinGraph(int parallelism) {
  KeyedJoinGraph g;
  NodeId s1 = g.graph.AddSource(EmptySource("s1"));
  NodeId s2 = g.graph.AddSource(EmptySource("s2"));
  NodeId k1 = g.graph.AddOperatorAfter(s1, MapOperator::AssignConstantKey(0));
  NodeId k2 = g.graph.AddOperatorAfter(s2, MapOperator::AssignConstantKey(0));
  g.join = g.graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{kWin, kSlide}, Predicate(), TimestampMode::kMax));
  EXPECT_TRUE(g.graph.Connect(k1, g.join, 0, PartitionMode::kHash).ok());
  EXPECT_TRUE(g.graph.Connect(k2, g.join, 1, PartitionMode::kHash).ok());
  EXPECT_TRUE(g.graph.SetParallelism(g.join, parallelism).ok());
  g.sink = g.graph.AddOperatorAfter(g.join, std::make_unique<CollectSink>());
  return g;
}

TEST(GraphRulesTest, E312KeyedParallelNotHashed) {
  // Parallel keyed join fed through forward edges: one key's events would
  // spread over subtasks and cross-stream matches silently vanish.
  KeyedJoinGraph g = MakeKeyedJoinGraph();
  ASSERT_TRUE(g.graph.SetParallelism(g.join, 2).ok());
  EXPECT_TRUE(
      AnalyzeJobGraph(g.graph).Has(DiagnosticCode::kGraphKeyedParallelNotHashed));
  EXPECT_FALSE(AnalyzeJobGraph(MakeParallelKeyedJoinGraph(2).graph)
                   .Has(DiagnosticCode::kGraphKeyedParallelNotHashed));
}

TEST(GraphRulesTest, W313ParallelismExceedsKeys) {
  KeyedJoinGraph g = MakeParallelKeyedJoinGraph(4);
  ASSERT_TRUE(g.graph.SetKeyDomainHint(g.join, 2).ok());
  EXPECT_TRUE(
      AnalyzeJobGraph(g.graph).Has(DiagnosticCode::kGraphParallelismExceedsKeys));

  KeyedJoinGraph wide = MakeParallelKeyedJoinGraph(4);
  ASSERT_TRUE(wide.graph.SetKeyDomainHint(wide.join, 128).ok());
  EXPECT_FALSE(AnalyzeJobGraph(wide.graph)
                   .Has(DiagnosticCode::kGraphParallelismExceedsKeys));
  // Unknown key domain (hint 0) must not warn.
  EXPECT_FALSE(AnalyzeJobGraph(MakeParallelKeyedJoinGraph(4).graph)
                   .Has(DiagnosticCode::kGraphParallelismExceedsKeys));
}

TEST(GraphRulesTest, E314ParallelUnsupported) {
  // FakeOp provides no CloneForSubtask, so it cannot be expanded.
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId op =
      graph.AddOperatorAfter(src, std::make_unique<FakeOp>(OperatorTraits{}));
  graph.AddOperatorAfter(op, std::make_unique<CollectSink>());
  ASSERT_TRUE(graph.SetParallelism(op, 2).ok());
  EXPECT_TRUE(
      AnalyzeJobGraph(graph).Has(DiagnosticCode::kGraphParallelUnsupported));
  EXPECT_FALSE(AnalyzeJobGraph(MakeParallelKeyedJoinGraph(2).graph)
                   .Has(DiagnosticCode::kGraphParallelUnsupported));
}

// === chain rules (I315) =====================================================

TEST(ChainRulesTest, FullyChainedLinearPipelineIsClean) {
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId f = graph.AddOperatorAfter(
      src,
      std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
  NodeId k = graph.AddOperatorAfter(f, MapOperator::AssignConstantKey(0));
  graph.AddOperatorAfter(k, std::make_unique<CollectSink>());
  DiagnosticReport report = AnalyzeChaining(graph);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(ChainRulesTest, I315FanInAndParallelismMismatch) {
  // Forward edges into the fan-in-2 join cannot fuse: two infos, nothing
  // stronger (the graph is perfectly runnable).
  DiagnosticReport fan_in = AnalyzeChaining(MakeKeyedJoinGraph().graph);
  EXPECT_TRUE(fan_in.Has(DiagnosticCode::kGraphForwardEdgeNotChained));
  EXPECT_EQ(fan_in.info_count(), 2);
  EXPECT_EQ(fan_in.error_count(), 0);
  EXPECT_EQ(fan_in.warning_count(), 0);

  // Parallel join into the parallelism-1 sink: the forward edge breaks on
  // the parallelism mismatch.
  DiagnosticReport mismatch =
      AnalyzeChaining(MakeParallelKeyedJoinGraph(2).graph);
  EXPECT_TRUE(mismatch.Has(DiagnosticCode::kGraphForwardEdgeNotChained));
}

TEST(ChainRulesTest, I315ChainingOptOut) {
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId f = graph.AddOperatorAfter(
      src,
      std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
  NodeId k = graph.AddOperatorAfter(f, MapOperator::AssignConstantKey(0));
  graph.AddOperatorAfter(k, std::make_unique<CollectSink>());
  ASSERT_TRUE(graph.SetChaining(k, false).ok());
  DiagnosticReport report = AnalyzeChaining(graph);
  // f -> k breaks on the consumer opt-out, k -> sink on the producer's.
  EXPECT_EQ(report.info_count(), 2) << report.ToString();
  EXPECT_TRUE(report.Has(DiagnosticCode::kGraphForwardEdgeNotChained));
}

TEST(ChainRulesTest, GraphLintStaysInfoFree) {
  // I315 lives in the separate AnalyzeChaining pass: the executor-facing
  // graph lint must not pick it up even when unfused forward edges exist.
  EXPECT_FALSE(AnalyzeJobGraph(MakeKeyedJoinGraph().graph)
                   .Has(DiagnosticCode::kGraphForwardEdgeNotChained));
}

// === integration ============================================================

TEST(ValidateTest, WrapsGraphRules) {
  // JobGraph::Validate surfaces the first E-level finding as a Status and
  // keeps the stable code in the message.
  JobGraph graph;
  NodeId src = graph.AddSource(EmptySource("s"));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(src, u, 0).ok());
  Status status = graph.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("CEP2ASP-E301"), std::string::npos)
      << status.ToString();
  EXPECT_TRUE(MakeKeyedJoinGraph().graph.Validate().ok());
}

TEST(AnalyzeQueryTest, PaperPatternLintsClean) {
  PaperPatterns patterns;
  auto pattern =
      patterns.Seq1(0.5, 15 * kMillisPerMinute, kMillisPerMinute).ValueOrDie();
  auto analysis = AnalyzeQuery(pattern);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis.ValueOrDie().Merged().empty())
      << analysis.ValueOrDie().Merged().ToString();
}

TEST(AnalyzeQueryTest, PatternErrorsStopTheCascade) {
  Pattern empty;
  auto analysis = AnalyzeQuery(empty);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(
      analysis.ValueOrDie().pattern_report.Has(DiagnosticCode::kPatternNoRoot));
  EXPECT_TRUE(analysis.ValueOrDie().plan_report.empty());
  EXPECT_TRUE(analysis.ValueOrDie().graph_report.empty());
}

// The acceptance scenario, part 1: a deliberately corrupted logical plan
// (window-span mismatch between the stateful operators) is flagged at the
// plan layer and refused at compile time with the stable E-code —
// CompilePlan validates its graph via JobGraph::Validate before handing it
// to any executor.
TEST(ExecutorRefusalTest, CorruptedWindowSpanRejectedAtCompile) {
  PaperPatterns patterns;
  auto pattern =
      patterns.SeqN(3, 0.5, 15 * kMillisPerMinute, kMillisPerMinute)
          .ValueOrDie();
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(pattern).ValueOrDie();

  LogicalOp* join = plan.root.get();
  while (join != nullptr && join->kind != LogicalOpKind::kWindowJoin) {
    join = join->inputs.empty() ? nullptr : join->inputs[0].get();
  }
  ASSERT_NE(join, nullptr);
  join->window.size /= 2;  // the corruption

  EXPECT_TRUE(AnalyzeLogicalPlan(plan, &pattern)
                  .Has(DiagnosticCode::kPlanWindowSpanMismatch));

  PresetOptions preset;
  preset.events_per_sensor = 8;
  Workload workload = MakeCombinedWorkload(preset);
  auto compiled = CompilePlan(plan, workload.MakeSourceFactory());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().ToString().find("CEP2ASP-E310"),
            std::string::npos)
      << compiled.status().ToString();
}

// The acceptance scenario, part 2: a job graph assembled by hand (never
// passing through CompilePlan's validation) with the same window-span
// corruption is refused by both executors at Run time; the full report is
// surfaced in ExecutionResult::diagnostics.
TEST(ExecutorRefusalTest, CorruptedWindowSpanRejectedAtRun) {
  auto make_corrupted = [] {
    KeyedJoinGraph g = MakeKeyedJoinGraph(SlidingWindowSpec{kWin, kSlide});
    NodeId s3 = g.graph.AddSource(EmptySource("s3"));
    NodeId k3 = g.graph.AddOperatorAfter(s3, MapOperator::AssignConstantKey(0));
    NodeId join2 =
        g.graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
            SlidingWindowSpec{kWin / 2, kSlide}, Predicate(),
            TimestampMode::kMax));
    EXPECT_TRUE(g.graph.Connect(g.sink, join2, 0).ok());
    EXPECT_TRUE(g.graph.Connect(k3, join2, 1).ok());
    g.graph.AddOperatorAfter(join2, std::make_unique<CollectSink>());
    return g;
  };

  KeyedJoinGraph g1 = make_corrupted();
  ExecutionResult result = RunJob(&g1.graph, nullptr);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("CEP2ASP-E310"), std::string::npos)
      << result.error;
  EXPECT_FALSE(result.diagnostics.empty());

  KeyedJoinGraph g2 = make_corrupted();
  ThreadedExecutor threaded(&g2.graph);
  ExecutionResult threaded_result = threaded.Run();
  EXPECT_FALSE(threaded_result.ok);
  EXPECT_NE(threaded_result.error.find("CEP2ASP-E310"), std::string::npos)
      << threaded_result.error;
  EXPECT_FALSE(threaded_result.diagnostics.empty());
}

TEST(DiagnosticRegistryTest, CodesRenderStably) {
  EXPECT_EQ(DiagnosticCodeName(DiagnosticCode::kPlanWindowSpanMismatch),
            "CEP2ASP-E201");
  EXPECT_EQ(DiagnosticCodeName(DiagnosticCode::kGraphSourceUnconnected),
            "CEP2ASP-W305");
  EXPECT_EQ(DiagnosticCodeName(DiagnosticCode::kGraphForwardEdgeNotChained),
            "CEP2ASP-I315");
  // Every registered code has a description and a consistent severity
  // letter in its rendered name.
  for (DiagnosticCode code : AllDiagnosticCodes()) {
    const std::string name = DiagnosticCodeName(code);
    ASSERT_GE(name.size(), 10u);
    char letter = '?';
    switch (DiagnosticCodeSeverity(code)) {
      case DiagnosticSeverity::kError:
        letter = 'E';
        break;
      case DiagnosticSeverity::kWarning:
        letter = 'W';
        break;
      case DiagnosticSeverity::kInfo:
        letter = 'I';
        break;
    }
    EXPECT_EQ(name[8], letter) << name;
    EXPECT_NE(std::string(DiagnosticCodeDescription(code)), "");
  }
}

}  // namespace
}  // namespace cep2asp
