#include <gtest/gtest.h>

#include "sea/parser.h"
#include "sea/pattern.h"
#include "sea/semantics.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;
using Events = std::vector<SimpleEvent>;

constexpr Timestamp kMin = kMillisPerMinute;

class SeaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = EventTypeRegistry::Global();
    a_ = registry_->RegisterOrGet("SeaA");
    b_ = registry_->RegisterOrGet("SeaB");
    c_ = registry_->RegisterOrGet("SeaC");
  }

  Pattern SeqAB(Timestamp w = 4 * kMin) {
    return PatternBuilder()
        .Seq(PatternBuilder::Atom(a_, "e1"), PatternBuilder::Atom(b_, "e2"))
        .Within(w)
        .Build()
        .ValueOrDie();
  }

  size_t CountMatches(const Pattern& p, const Events& events) {
    return sea::EvaluateOnSubstream(p, events).size();
  }

  EventTypeRegistry* registry_ = nullptr;
  EventTypeId a_ = 0, b_ = 0, c_ = 0;
};

// --- Pattern construction & validation ----------------------------------------

TEST_F(SeaTest, BuilderFlattensNestedSeq) {
  std::vector<std::unique_ptr<PatternNode>> inner;
  inner.push_back(PatternBuilder::Atom(b_, "e2"));
  inner.push_back(PatternBuilder::Atom(c_, "e3"));
  auto inner_node = std::make_unique<PatternNode>();
  inner_node->op = PatternOp::kSeq;
  inner_node->children = std::move(inner);

  PatternBuilder builder;
  Pattern p = builder.Seq(PatternBuilder::Atom(a_, "e1"), std::move(inner_node))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  // SEQ(T1, SEQ(T2, T3)) == SEQ(T1, T2, T3) by associativity (§3.2).
  EXPECT_EQ(p.root().children.size(), 3u);
  EXPECT_EQ(p.OutputArity(), 3);
}

TEST_F(SeaTest, WindowIsMandatory) {
  auto result = PatternBuilder()
                    .Seq(PatternBuilder::Atom(a_, "e1"),
                         PatternBuilder::Atom(b_, "e2"))
                    .Build();
  EXPECT_FALSE(result.ok());  // §3.1.4: window operator mandatory
}

TEST_F(SeaTest, CrossPredicateOutOfRangeRejected) {
  auto result =
      PatternBuilder()
          .Seq(PatternBuilder::Atom(a_, "e1"), PatternBuilder::Atom(b_, "e2"))
          .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLt,
                                      {5, Attribute::kValue}))
          .Within(4 * kMin)
          .Build();
  EXPECT_FALSE(result.ok());
}

TEST_F(SeaTest, IterCountsPositions) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 4))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  EXPECT_EQ(p.OutputArity(), 4);
}

TEST_F(SeaTest, OrChildrenMustBeAtoms) {
  auto result = PatternBuilder()
                    .Or(PatternBuilder::Atom(a_, "e1"),
                        PatternBuilder::Iter(b_, "v", 2))
                    .Within(4 * kMin)
                    .Build();
  EXPECT_FALSE(result.ok());
}

// --- Atom / filter semantics (Eq. 3) --------------------------------------------

TEST_F(SeaTest, AtomSelectsByTypeAndFilter) {
  Predicate filter;
  filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLe, 10.0));
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Atom(a_, "e1", filter))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  Events events = {Ev(a_, 1, 0, 5), Ev(a_, 1, 1, 15), Ev(b_, 1, 2, 5)};
  auto matches = sea::EvaluateOnSubstream(p, events);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].event(0).value, 5.0);
}

// --- Conjunction (Eq. 9) ----------------------------------------------------------

TEST_F(SeaTest, ConjunctionIsOrderInsensitive) {
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  // B occurs before A: still a match.
  Events events = {Ev(b_, 1, 0, 0), Ev(a_, 1, kMin, 0)};
  EXPECT_EQ(CountMatches(p, events), 1u);
}

TEST_F(SeaTest, ConjunctionProductCardinality) {
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  Events events;
  for (int i = 0; i < 3; ++i) events.push_back(Ev(a_, 1, i, 0));
  for (int i = 0; i < 4; ++i) events.push_back(Ev(b_, 1, 10 + i, 0));
  EXPECT_EQ(CountMatches(p, events), 12u);  // Cartesian product
}

// --- Sequence (Eq. 10) --------------------------------------------------------------

TEST_F(SeaTest, SequenceRequiresStrictOrder) {
  Pattern p = SeqAB();
  EXPECT_EQ(CountMatches(p, {Ev(a_, 1, 10, 0), Ev(b_, 1, 20, 0)}), 1u);
  EXPECT_EQ(CountMatches(p, {Ev(a_, 1, 20, 0), Ev(b_, 1, 10, 0)}), 0u);
  // Simultaneous events do not satisfy e1.ts < e2.ts.
  EXPECT_EQ(CountMatches(p, {Ev(a_, 1, 10, 0), Ev(b_, 1, 10, 0)}), 0u);
}

TEST_F(SeaTest, SequenceWithCrossPredicate) {
  // Listing 2: SEQ(T1 e1, T2 e2) WHERE e1.value <= e2.value.
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
                                              {1, Attribute::kValue}))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  EXPECT_EQ(CountMatches(p, {Ev(a_, 1, 0, 5), Ev(b_, 1, 1, 7)}), 1u);
  EXPECT_EQ(CountMatches(p, {Ev(a_, 1, 0, 8), Ev(b_, 1, 1, 7)}), 0u);
}

TEST_F(SeaTest, NarySequenceOrdersAllChildren) {
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"),
                       PatternBuilder::Atom(c_, "e3"))
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  EXPECT_EQ(
      CountMatches(p, {Ev(a_, 1, 0, 0), Ev(b_, 1, 10, 0), Ev(c_, 1, 20, 0)}),
      1u);
  // c before b: violates order.
  EXPECT_EQ(
      CountMatches(p, {Ev(a_, 1, 0, 0), Ev(c_, 1, 10, 0), Ev(b_, 1, 20, 0)}),
      0u);
}

// --- Disjunction (Eq. 11) --------------------------------------------------------------

TEST_F(SeaTest, DisjunctionUnionsSingleEvents) {
  Pattern p = PatternBuilder()
                  .Or(PatternBuilder::Atom(a_, "e1"),
                      PatternBuilder::Atom(b_, "e2"))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  Events events = {Ev(a_, 1, 0, 0), Ev(b_, 1, 1, 0), Ev(c_, 1, 2, 0)};
  auto matches = sea::EvaluateOnSubstream(p, events);
  EXPECT_EQ(matches.size(), 2u);
  for (const Tuple& m : matches) EXPECT_EQ(m.size(), 1u);
}

// --- Iteration (Eq. 12) -----------------------------------------------------------------

TEST_F(SeaTest, IterationEnumeratesOrderedCombinations) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 2))
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  Events events = {Ev(a_, 1, 0, 0), Ev(a_, 1, 10, 0), Ev(a_, 1, 20, 0)};
  // C(3,2) strictly ordered pairs.
  EXPECT_EQ(CountMatches(p, events), 3u);
}

TEST_F(SeaTest, IterationConsecutiveConstraint) {
  // v_n.value < v_{n+1}.value (§5.2.2 ITER_2).
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Predicate(),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  Events increasing = {Ev(a_, 1, 0, 1), Ev(a_, 1, 10, 2), Ev(a_, 1, 20, 3)};
  EXPECT_EQ(CountMatches(p, increasing), 1u);
  Events dip = {Ev(a_, 1, 0, 1), Ev(a_, 1, 10, 5), Ev(a_, 1, 20, 3)};
  EXPECT_EQ(CountMatches(p, dip), 0u);
}

// --- Negated sequence (Eq. 14) ------------------------------------------------------------

TEST_F(SeaTest, NseqBlocksOnIntermediateEvent) {
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  EXPECT_EQ(CountMatches(p, {Ev(a_, 1, 0, 0), Ev(c_, 1, 20, 0)}), 1u);
  EXPECT_EQ(
      CountMatches(p, {Ev(a_, 1, 0, 0), Ev(b_, 1, 10, 0), Ev(c_, 1, 20, 0)}),
      0u);
}

TEST_F(SeaTest, NseqIntervalIsOpen) {
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  // T2 exactly at e1.ts or e3.ts does not block (strictly inside only).
  EXPECT_EQ(
      CountMatches(p, {Ev(a_, 1, 0, 0), Ev(b_, 1, 0, 0), Ev(c_, 1, 20, 0)}),
      1u);
  EXPECT_EQ(
      CountMatches(p, {Ev(a_, 1, 0, 0), Ev(b_, 1, 20, 0), Ev(c_, 1, 20, 0)}),
      1u);
}

TEST_F(SeaTest, NseqRespectsNegatedFilter) {
  Predicate b_filter;
  b_filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 50.0));
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", b_filter}, {c_, "e3", {}})
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  // The intermediate B has value 10: filtered out, does not block.
  EXPECT_EQ(
      CountMatches(p, {Ev(a_, 1, 0, 0), Ev(b_, 1, 10, 10), Ev(c_, 1, 20, 0)}),
      1u);
}

// --- Windowed evaluation: Theorems 1 & 2 ------------------------------------------------------

TEST_F(SeaTest, Theorem2EdgeSpanDetectedWithSlideOne) {
  // A match whose events are W-1 apart is only caught by the window
  // starting exactly at the first event; slide <= event granularity
  // guarantees that window exists.
  Pattern p = SeqAB(4 * kMin);
  p.set_slide(kMin);
  Events stream = {Ev(a_, 1, 7 * kMin, 0), Ev(b_, 1, 11 * kMin - 1, 0)};
  auto eval = sea::EvaluateWithWindows(p, stream);
  EXPECT_EQ(eval.matches.size(), 1u);
}

TEST_F(SeaTest, LargeSlideLosesEdgeMatches) {
  // Negative control: slide > granularity can miss the worst-case span.
  Pattern p = SeqAB(4 * kMin);
  p.set_slide(2 * kMin);
  Events stream = {Ev(a_, 1, 7 * kMin, 0), Ev(b_, 1, 11 * kMin - 1, 0)};
  auto eval = sea::EvaluateWithWindows(p, stream);
  EXPECT_EQ(eval.matches.size(), 0u);
}

TEST_F(SeaTest, OverlappingWindowsProduceDuplicates) {
  Pattern p = SeqAB(4 * kMin);
  p.set_slide(kMin);
  // 1 minute apart: contained in several overlapping windows.
  Events stream = {Ev(a_, 1, 10 * kMin, 0), Ev(b_, 1, 11 * kMin, 0)};
  auto eval = sea::EvaluateWithWindows(p, stream);
  EXPECT_EQ(eval.matches.size(), 1u);
  EXPECT_GT(eval.emissions_with_duplicates, 1);
}

TEST_F(SeaTest, PairwiseWindowConstraintHolds) {
  // Events W apart never match (|ei.ts - ej.ts| < W required).
  Pattern p = SeqAB(4 * kMin);
  Events stream = {Ev(a_, 1, 0, 0), Ev(b_, 1, 4 * kMin, 0)};
  auto eval = sea::EvaluateWithWindows(p, stream);
  EXPECT_EQ(eval.matches.size(), 0u);
}

// --- PSL parser ------------------------------------------------------------------------

TEST_F(SeaTest, ParseListing2Pattern) {
  auto result = sea::ParsePattern(
      "PATTERN SEQ(SeaA e1, SeaB e2) "
      "WHERE e1.value <= e2.value AND e2.value <= 10 "
      "WITHIN 4 MINUTES");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Pattern& p = *result;
  EXPECT_EQ(p.root().op, PatternOp::kSeq);
  EXPECT_EQ(p.window_size(), 4 * kMin);
  // e1.value <= e2.value is a cross predicate; e2.value <= 10 a filter.
  EXPECT_EQ(p.cross_predicates().terms().size(), 1u);
  EXPECT_FALSE(p.root().children[1]->atom.filter.IsTrue());
}

TEST_F(SeaTest, ParseIterForms) {
  auto a = sea::ParsePattern("PATTERN ITER3(SeaA v) WITHIN 15 MINUTES");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->root().op, PatternOp::kIter);
  EXPECT_EQ(a->root().iter_count, 3);
  auto b = sea::ParsePattern("PATTERN ITER(SeaA v, 5) WITHIN 15 MINUTES");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->root().iter_count, 5);
  auto c = sea::ParsePattern("PATTERN ITER2+(SeaA v) WITHIN 15 MINUTES");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->root().iter_unbounded);
}

TEST_F(SeaTest, ParseNseqBothSyntaxes) {
  auto a = sea::ParsePattern(
      "PATTERN NSEQ(SeaA e1, !SeaB e2, SeaC e3) WITHIN 10 MINUTES");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->root().op, PatternOp::kNseq);
  auto b = sea::ParsePattern(
      "PATTERN SEQ(SeaA e1, !SeaB e2, SeaC e3) WITHIN 10 MINUTES");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->root().op, PatternOp::kNseq);
}

TEST_F(SeaTest, ParseDurationsAndSlide) {
  auto p = sea::ParsePattern(
      "PATTERN SEQ(SeaA a1, SeaB b1) WITHIN 120 SECONDS SLIDE 30 SECONDS");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->window_size(), 120 * kMillisPerSecond);
  EXPECT_EQ(p->slide(), 30 * kMillisPerSecond);
}

TEST_F(SeaTest, ParseRejectsUnknownType) {
  auto p =
      sea::ParsePattern("PATTERN SEQ(NoSuchType x, SeaB y) WITHIN 1 MINUTE");
  EXPECT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsParseError());
}

TEST_F(SeaTest, ParseRejectsMalformed) {
  EXPECT_FALSE(sea::ParsePattern("SEQ(SeaA a, SeaB b) WITHIN 1 MINUTE").ok());
  EXPECT_FALSE(sea::ParsePattern("PATTERN SEQ(SeaA a, SeaB b)").ok());
  EXPECT_FALSE(
      sea::ParsePattern("PATTERN SEQ(SeaA a SeaB b) WITHIN 1 MINUTE").ok());
  EXPECT_FALSE(sea::ParsePattern(
                   "PATTERN SEQ(SeaA a, SeaB b) WHERE a.value < WITHIN 1 MINUTE")
                   .ok());
  EXPECT_FALSE(sea::ParsePattern("PATTERN SEQ(SeaA a, !SeaB b) WITHIN 1 MINUTE")
                   .ok());  // negation needs ternary SEQ
}

TEST_F(SeaTest, ParseDuplicateVariableRejected) {
  EXPECT_FALSE(
      sea::ParsePattern("PATTERN SEQ(SeaA x, SeaB x) WITHIN 1 MINUTE").ok());
}

TEST_F(SeaTest, ParsedPatternEvaluates) {
  auto p = sea::ParsePattern(
      "PATTERN SEQ(SeaA e1, SeaB e2) WHERE e1.value <= e2.value "
      "WITHIN 4 MINUTES");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CountMatches(*p, {Ev(a_, 1, 0, 5), Ev(b_, 1, kMin, 9)}), 1u);
}

TEST_F(SeaTest, ParseAndOr) {
  auto a = sea::ParsePattern("PATTERN AND(SeaA x, SeaB y) WITHIN 2 MINUTES");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->root().op, PatternOp::kAnd);
  auto o = sea::ParsePattern("PATTERN OR(SeaA x, SeaB y) WITHIN 2 MINUTES");
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o->root().op, PatternOp::kOr);
}

}  // namespace
}  // namespace cep2asp
