// Parameterized property sweeps over the window machinery: the
// discretization algebra of §3.1.2 must hold for every (size, slide)
// combination, and the interval-join bounds of O1 must agree with the
// window-pair semantics for every timestamp offset.

#include <gtest/gtest.h>

#include "asp/interval_join.h"
#include "asp/window.h"

namespace cep2asp {
namespace {

struct WindowParam {
  std::string name;
  Timestamp size;
  Timestamp slide;
};

class WindowSweepTest : public ::testing::TestWithParam<WindowParam> {};

TEST_P(WindowSweepTest, EveryTimestampInExactlyItsOverlapCount) {
  SlidingWindowSpec spec{GetParam().size, GetParam().slide};
  ASSERT_TRUE(spec.valid());
  for (Timestamp ts : {Timestamp{0}, Timestamp{1}, spec.slide - 1, spec.slide,
                       spec.size - 1, spec.size, 10 * spec.size + 7}) {
    int64_t first = spec.FirstWindow(ts);
    int64_t last = spec.LastWindow(ts);
    // A timestamp is covered by floor(size/slide) or floor(size/slide)+1
    // windows (exactly size/slide when slide divides size).
    int64_t count = last - first + 1;
    EXPECT_GE(count, spec.size / spec.slide) << "ts=" << ts;
    EXPECT_LE(count, spec.size / spec.slide + 1) << "ts=" << ts;
    if (spec.size % spec.slide == 0) {
      EXPECT_EQ(count, spec.size / spec.slide) << "ts=" << ts;
    }
    // Containment is exact at the range edges.
    EXPECT_GE(ts, spec.WindowStart(first));
    EXPECT_LT(ts, spec.WindowEnd(first));
    EXPECT_GE(ts, spec.WindowStart(last));
    EXPECT_LT(ts, spec.WindowEnd(last));
    // Neighbours do not contain it.
    EXPECT_GE(spec.WindowStart(last + 1), ts + 1);
    EXPECT_LE(spec.WindowEnd(first - 1), ts);
  }
}

TEST_P(WindowSweepTest, InterWindowSemanticsAdvanceBySlide) {
  SlidingWindowSpec spec{GetParam().size, GetParam().slide};
  for (int64_t k = -3; k < 10; ++k) {
    EXPECT_EQ(spec.WindowStart(k + 1) - spec.WindowStart(k), spec.slide);
    EXPECT_EQ(spec.WindowEnd(k) - spec.WindowStart(k), spec.size);
  }
}

TEST_P(WindowSweepTest, CanFireExactlyAtWindowEnd) {
  SlidingWindowSpec spec{GetParam().size, GetParam().slide};
  for (int64_t k : {int64_t{0}, int64_t{5}, int64_t{117}}) {
    EXPECT_FALSE(spec.CanFire(k, spec.WindowEnd(k) - 1));
    EXPECT_TRUE(spec.CanFire(k, spec.WindowEnd(k)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, WindowSweepTest,
    ::testing::Values(WindowParam{"tumbling", 10, 10},
                      WindowParam{"half", 10, 5},
                      WindowParam{"slide1", 10, 1},
                      WindowParam{"uneven", 15, 4},
                      WindowParam{"minute", 15 * kMillisPerMinute,
                                  kMillisPerMinute},
                      WindowParam{"prime", 17, 3}),
    [](const auto& info) { return info.param.name; });

// --- Interval bounds -------------------------------------------------------------

TEST(IntervalBoundsTest, SequenceBoundsMatchPairSemantics) {
  // (e1.ts + 0, e1.ts + W) strict: exactly the pairs a SEQ within W forms.
  const Timestamp w = 100;
  IntervalBounds bounds = IntervalBounds::ForSequence(w);
  const Timestamp left = 1000;
  for (Timestamp offset = -5; offset <= w + 5; ++offset) {
    bool expected = offset > 0 && offset < w;  // e1.ts < e2.ts && diff < W
    EXPECT_EQ(bounds.Contains(left, left + offset), expected)
        << "offset=" << offset;
  }
}

TEST(IntervalBoundsTest, ConjunctionBoundsSymmetric) {
  const Timestamp w = 100;
  IntervalBounds bounds = IntervalBounds::ForConjunction(w);
  const Timestamp left = 1000;
  for (Timestamp offset = -w - 5; offset <= w + 5; ++offset) {
    bool expected = offset > -w && offset < w;  // |diff| < W
    EXPECT_EQ(bounds.Contains(left, left + offset), expected)
        << "offset=" << offset;
  }
}

TEST(IntervalBoundsTest, NonStrictVariants) {
  IntervalBounds bounds{0, 10, /*lower_strict=*/false, /*upper_strict=*/false};
  EXPECT_TRUE(bounds.Contains(100, 100));
  EXPECT_TRUE(bounds.Contains(100, 110));
  EXPECT_FALSE(bounds.Contains(100, 111));
  EXPECT_FALSE(bounds.Contains(100, 99));
}

}  // namespace
}  // namespace cep2asp
