#include <gtest/gtest.h>

#include "event/event.h"
#include "event/event_type.h"
#include "event/predicate.h"

namespace cep2asp {
namespace {

SimpleEvent Make(EventTypeId type, int64_t id, Timestamp ts, double value) {
  SimpleEvent e;
  e.type = type;
  e.id = id;
  e.ts = ts;
  e.value = value;
  return e;
}

// --- EventTypeRegistry -------------------------------------------------------

TEST(EventTypeRegistryTest, RegisterAndLookup) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterOrGet("A");
  EventTypeId b = registry.RegisterOrGet("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.RegisterOrGet("A"), a);
  EXPECT_EQ(registry.Lookup("B").ValueOrDie(), b);
  EXPECT_TRUE(registry.Lookup("C").status().IsNotFound());
  EXPECT_EQ(registry.Name(a), "A");
  EXPECT_EQ(registry.size(), 2u);
}

TEST(EventTypeRegistryTest, UnknownIdRenders) {
  EventTypeRegistry registry;
  EXPECT_EQ(registry.Name(99), "type99");
}

// --- Attributes ----------------------------------------------------------------

TEST(AttributeTest, ParseAllNames) {
  Attribute attr;
  EXPECT_TRUE(ParseAttribute("value", &attr));
  EXPECT_EQ(attr, Attribute::kValue);
  EXPECT_TRUE(ParseAttribute("lat", &attr));
  EXPECT_TRUE(ParseAttribute("lon", &attr));
  EXPECT_TRUE(ParseAttribute("ts", &attr));
  EXPECT_EQ(attr, Attribute::kTs);
  EXPECT_TRUE(ParseAttribute("id", &attr));
  EXPECT_TRUE(ParseAttribute("ats", &attr));
  EXPECT_EQ(attr, Attribute::kAuxTs);
  EXPECT_FALSE(ParseAttribute("speed", &attr));
}

TEST(AttributeTest, GetAttribute) {
  SimpleEvent e = Make(1, 7, 5000, 3.5);
  e.lat = 50.1;
  e.lon = 9.2;
  e.aux_ts = 6000;
  EXPECT_DOUBLE_EQ(GetAttribute(e, Attribute::kValue), 3.5);
  EXPECT_DOUBLE_EQ(GetAttribute(e, Attribute::kTs), 5000.0);
  EXPECT_DOUBLE_EQ(GetAttribute(e, Attribute::kId), 7.0);
  EXPECT_DOUBLE_EQ(GetAttribute(e, Attribute::kLat), 50.1);
  EXPECT_DOUBLE_EQ(GetAttribute(e, Attribute::kLon), 9.2);
  EXPECT_DOUBLE_EQ(GetAttribute(e, Attribute::kAuxTs), 6000.0);
}

// --- Tuple ----------------------------------------------------------------------

TEST(TupleTest, SingleEventDefaults) {
  Tuple t(Make(2, 11, 1000, 1.0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.event_time(), 1000);
  EXPECT_EQ(t.key(), 11);
  EXPECT_EQ(t.tsb(), 1000);
  EXPECT_EQ(t.tse(), 1000);
}

TEST(TupleTest, ConcatComposesAndTracksBounds) {
  Tuple a(Make(1, 1, 1000, 0));
  Tuple b(Make(2, 2, 3000, 0));
  Tuple joined = Tuple::Concat(a, b);
  EXPECT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined.tsb(), 1000);
  EXPECT_EQ(joined.tse(), 3000);
  EXPECT_EQ(joined.key(), a.key());
  // ce(e1..en, tsb, tse): the match spans first to last occurrence.
  joined.set_event_time(joined.tsb());
  EXPECT_EQ(joined.event_time(), 1000);
}

TEST(TupleTest, MaxCreateTs) {
  SimpleEvent e1 = Make(1, 1, 10, 0);
  e1.create_ts = 500;
  SimpleEvent e2 = Make(2, 2, 20, 0);
  e2.create_ts = 700;
  Tuple t = Tuple::Concat(Tuple(e1), Tuple(e2));
  EXPECT_EQ(t.max_create_ts(), 700);
}

TEST(TupleTest, EqualityByContent) {
  Tuple a(Make(1, 1, 10, 2.0));
  Tuple b(Make(1, 1, 10, 2.0));
  Tuple c(Make(1, 1, 10, 3.0));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, MatchKeyOrderedVsUnordered) {
  Tuple ab = Tuple::Concat(Tuple(Make(1, 1, 10, 0)), Tuple(Make(2, 2, 20, 0)));
  Tuple ba = Tuple::Concat(Tuple(Make(2, 2, 20, 0)), Tuple(Make(1, 1, 10, 0)));
  EXPECT_NE(MatchKey(ab), MatchKey(ba));
  EXPECT_EQ(MatchKey(ab, /*ordered=*/false), MatchKey(ba, /*ordered=*/false));
}

// --- Predicates -----------------------------------------------------------------

TEST(PredicateTest, EvalCmpAllOps) {
  EXPECT_TRUE(EvalCmp(1, CmpOp::kLt, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kLe, 2));
  EXPECT_TRUE(EvalCmp(3, CmpOp::kGt, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kGe, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kEq, 2));
  EXPECT_TRUE(EvalCmp(1, CmpOp::kNe, 2));
  EXPECT_FALSE(EvalCmp(2, CmpOp::kLt, 2));
}

TEST(PredicateTest, AttrConstComparison) {
  Comparison c = Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLe, 10.0);
  SimpleEvent pass = Make(1, 1, 0, 10.0);
  SimpleEvent fail = Make(1, 1, 0, 10.5);
  EXPECT_TRUE(c.EvalOnEvents(&pass, 1));
  EXPECT_FALSE(c.EvalOnEvents(&fail, 1));
}

TEST(PredicateTest, AttrAttrComparison) {
  // e1.value <= e2.value (Listing 2).
  Comparison c = Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
                                      {1, Attribute::kValue});
  SimpleEvent events[2] = {Make(1, 1, 0, 5.0), Make(2, 2, 1, 7.0)};
  EXPECT_TRUE(c.EvalOnEvents(events, 2));
  events[1].value = 4.0;
  EXPECT_FALSE(c.EvalOnEvents(events, 2));
}

TEST(PredicateTest, RhsOffsetExpressesWindowBound) {
  // e1.ts < e0.ts + 100 (window-style constraint).
  Comparison c = Comparison::AttrAttr({1, Attribute::kTs}, CmpOp::kLt,
                                      {0, Attribute::kTs}, 100.0);
  SimpleEvent events[2] = {Make(1, 1, 1000, 0), Make(2, 2, 1099, 0)};
  EXPECT_TRUE(c.EvalOnEvents(events, 2));
  events[1].ts = 1100;
  EXPECT_FALSE(c.EvalOnEvents(events, 2));
}

TEST(PredicateTest, CrossVarEqualityDetection) {
  Comparison eq = Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                       {1, Attribute::kId});
  EXPECT_TRUE(eq.IsCrossVarEquality());
  Comparison self_eq = Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                            {0, Attribute::kId});
  EXPECT_FALSE(self_eq.IsCrossVarEquality());
  Comparison lt = Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kLt,
                                       {1, Attribute::kId});
  EXPECT_FALSE(lt.IsCrossVarEquality());
  Comparison offset = Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                           {1, Attribute::kId}, 5.0);
  EXPECT_FALSE(offset.IsCrossVarEquality());
}

TEST(PredicateTest, Remap) {
  Comparison c = Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLt,
                                      {1, Attribute::kTs});
  Comparison remapped = c.Remap({2, 0});
  EXPECT_EQ(remapped.lhs.var, 2);
  EXPECT_EQ(remapped.rhs_attr.var, 0);
}

TEST(PredicateTest, ConjunctionSemantics) {
  Predicate p;
  p.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 1.0));
  p.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 5.0));
  EXPECT_TRUE(p.EvalOnEvent(Make(1, 1, 0, 3.0)));
  EXPECT_FALSE(p.EvalOnEvent(Make(1, 1, 0, 6.0)));
  EXPECT_FALSE(p.EvalOnEvent(Make(1, 1, 0, 0.5)));
}

TEST(PredicateTest, EmptyPredicateIsTrue) {
  Predicate p;
  EXPECT_TRUE(p.IsTrue());
  EXPECT_TRUE(p.EvalOnEvent(Make(1, 1, 0, 0)));
  EXPECT_EQ(p.MaxVar(), -1);
  EXPECT_EQ(p.ToString(), "true");
}

TEST(PredicateTest, EvalOnTuplePositional) {
  Predicate p;
  p.Add(Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLt,
                             {1, Attribute::kTs}));
  Tuple ordered =
      Tuple::Concat(Tuple(Make(1, 1, 10, 0)), Tuple(Make(2, 2, 20, 0)));
  Tuple reversed =
      Tuple::Concat(Tuple(Make(1, 1, 20, 0)), Tuple(Make(2, 2, 10, 0)));
  EXPECT_TRUE(p.EvalOnTuple(ordered));
  EXPECT_FALSE(p.EvalOnTuple(reversed));
}

TEST(PredicateTest, ToStringReadable) {
  Comparison c = Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLe, 10);
  EXPECT_EQ(c.ToString(), "e0.value <= 10");
}

}  // namespace
}  // namespace cep2asp
