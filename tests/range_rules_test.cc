// Tests for the interval range pass (analysis/range_rules): predicate
// truth under declared ranges, E318/W319 emission through AnalyzeQuery
// (positive AND negative per the diagnostics convention), translator
// consumption (always-true leaf filters dropped, always-false plans
// refused with CEP2ASP-E318), the I320 range report, fact attachment,
// and the soundness property that derived intervals contain every value
// observed on randomly generated streams.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/range_rules.h"
#include "common/clock.h"
#include "sea/pattern.h"
#include "translator/translator.h"
#include "workload/generator.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

Predicate ValuePred(CmpOp op, double threshold) {
  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, op, threshold));
  return pred;
}

EventRanges RangesWithValue(double lo, double hi) {
  EventRanges ranges;
  ranges[Attribute::kValue] = Interval::Range(lo, hi);
  return ranges;
}

Result<Pattern> SeqQV(const Predicate& q_filter,
                      const Predicate& v_filter = Predicate()) {
  const SensorTypes types = SensorTypes::Get();
  PatternBuilder builder;
  builder.Seq(PatternBuilder::Atom(types.q, "q1", q_filter),
              PatternBuilder::Atom(types.v, "v1", v_filter));
  return builder.Within(15 * kMillisPerMinute).Build();
}

// --- PredicateTruthOnEvent ------------------------------------------------

TEST(PredicateTruthTest, DecidesAgainstDeclaredRanges) {
  const EventRanges declared = RangesWithValue(0.0, 100.0);
  EXPECT_EQ(PredicateTruthOnEvent(ValuePred(CmpOp::kGe, -10.0), declared),
            Truth::kAlways);
  EXPECT_EQ(PredicateTruthOnEvent(ValuePred(CmpOp::kGt, 200.0), declared),
            Truth::kNever);
  EXPECT_EQ(PredicateTruthOnEvent(ValuePred(CmpOp::kGt, 50.0), declared),
            Truth::kSometimes);
}

TEST(PredicateTruthTest, SelfContradictionNeedsNoDeclaredRanges) {
  // Terms refine left to right: value < 10 narrows the slot, value > 20
  // then evaluates kNever even though nothing was declared (Top ranges).
  Predicate contradiction;
  contradiction.Add(
      Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 10.0));
  contradiction.Add(
      Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 20.0));
  EXPECT_EQ(PredicateTruthOnEvent(contradiction, EventRanges{}),
            Truth::kNever);

  // The empty conjunction makes no claim either way.
  EXPECT_EQ(PredicateTruthOnEvent(Predicate(), EventRanges{}),
            Truth::kSometimes);
}

// --- E318 / W319 through AnalyzeQuery (positive + negative) ---------------

TEST(RangeRulesTest, AlwaysFalseFilterEmitsE318) {
  const SensorTypes types = SensorTypes::Get();
  SourceRangeCatalog catalog;
  catalog.Declare(types.q, RangesWithValue(0.0, 100.0));
  catalog.Declare(types.v, RangesWithValue(0.0, 100.0));

  auto query = SeqQV(ValuePred(CmpOp::kGt, 200.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto analysis = AnalyzeQuery(query.ValueOrDie(), {}, catalog);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis.ValueOrDie().graph_report.Has(
      DiagnosticCode::kGraphFilterAlwaysFalse))
      << analysis.ValueOrDie().graph_report.ToString();
}

TEST(RangeRulesTest, AlwaysTrueFilterEmitsW319) {
  const SensorTypes types = SensorTypes::Get();
  SourceRangeCatalog catalog;
  catalog.Declare(types.q, RangesWithValue(0.0, 100.0));
  catalog.Declare(types.v, RangesWithValue(0.0, 100.0));

  // Satisfiable under Top (so the statistics-free translator keeps it),
  // vacuous under the declared [0, 100] range. Interpreted operators keep
  // the filter as its own node; the default compiled pipeline fuses it
  // with the key-assigning map, and a key-assigning operator is not
  // removable, so W319 is (correctly) suppressed there.
  auto query = SeqQV(ValuePred(CmpOp::kGe, -10.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  TranslatorOptions interpreted;
  interpreted.compile_expressions = false;
  auto analysis = AnalyzeQuery(query.ValueOrDie(), interpreted, catalog);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis.ValueOrDie().graph_report.Has(
      DiagnosticCode::kGraphFilterAlwaysTrue))
      << analysis.ValueOrDie().graph_report.ToString();

  auto fused = AnalyzeQuery(query.ValueOrDie(), {}, catalog);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(fused.ValueOrDie().graph_report.error_count(), 0)
      << fused.ValueOrDie().graph_report.ToString();
}

TEST(RangeRulesTest, SatisfiableFilterStaysSilent) {
  const SensorTypes types = SensorTypes::Get();
  SourceRangeCatalog catalog;
  catalog.Declare(types.q, RangesWithValue(0.0, 100.0));
  catalog.Declare(types.v, RangesWithValue(0.0, 100.0));

  auto query = SeqQV(ValuePred(CmpOp::kGe, 50.0),
                     ValuePred(CmpOp::kLe, 10.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto analysis = AnalyzeQuery(query.ValueOrDie(), {}, catalog);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const DiagnosticReport& report = analysis.ValueOrDie().graph_report;
  EXPECT_FALSE(report.Has(DiagnosticCode::kGraphFilterAlwaysFalse))
      << report.ToString();
  EXPECT_FALSE(report.Has(DiagnosticCode::kGraphFilterAlwaysTrue))
      << report.ToString();
}

// --- Translator consumption ----------------------------------------------

TEST(RangeRulesTest, TranslatorDropsAlwaysTrueLeafFilter) {
  const SensorTypes types = SensorTypes::Get();
  auto query = SeqQV(ValuePred(CmpOp::kGe, -10.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Without declared ranges the filter is kept...
  Translator plain;
  auto kept = plain.ToLogicalPlan(query.ValueOrDie());
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(kept.ValueOrDie().root->CountKind(LogicalOpKind::kFilter), 1);

  // ...with them it is provably vacuous and dropped from the plan.
  StreamStatistics stats;
  stats.source_ranges.Declare(types.q, RangesWithValue(0.0, 100.0));
  Translator informed({}, stats);
  auto dropped = informed.ToLogicalPlan(query.ValueOrDie());
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.ValueOrDie().root->CountKind(LogicalOpKind::kFilter), 0);
}

TEST(RangeRulesTest, TranslatorRefusesAlwaysFalsePlanWithE318) {
  Predicate contradiction;
  contradiction.Add(
      Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 10.0));
  contradiction.Add(
      Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 20.0));
  auto query = SeqQV(contradiction);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  Translator translator;
  auto plan = translator.ToLogicalPlan(query.ValueOrDie());
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition)
      << plan.status().ToString();
  EXPECT_NE(plan.status().message().find("CEP2ASP-E318"), std::string::npos)
      << plan.status().ToString();

  // The end-to-end path refuses too (TranslatePattern -> ToLogicalPlan).
  Workload workload;
  StreamSpec spec;
  spec.type = SensorTypes::Get().q;
  spec.events_per_sensor = 4;
  workload.AddStream(spec);
  spec.type = SensorTypes::Get().v;
  workload.AddStream(spec);
  auto compiled = TranslatePattern(query.ValueOrDie(), {},
                                   workload.MakeSourceFactory());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("CEP2ASP-E318"),
            std::string::npos)
      << compiled.status().ToString();
}

TEST(RangeRulesTest, TranslatorRefusesDeclaredDeadFilter) {
  const SensorTypes types = SensorTypes::Get();
  auto query = SeqQV(ValuePred(CmpOp::kGt, 200.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Satisfiable without priors: translation succeeds.
  Translator plain;
  EXPECT_TRUE(plain.ToLogicalPlan(query.ValueOrDie()).ok());

  // Declared [0, 100] proves it dead: refused at build time.
  StreamStatistics stats;
  stats.source_ranges.Declare(types.q, RangesWithValue(0.0, 100.0));
  Translator informed({}, stats);
  auto plan = informed.ToLogicalPlan(query.ValueOrDie());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("CEP2ASP-E318"), std::string::npos)
      << plan.status().ToString();
}

// --- I320 report and fact attachment --------------------------------------

TEST(RangeRulesTest, DescribeRangesEmitsI320PerComputedNode) {
  Workload workload;
  StreamSpec spec;
  spec.type = SensorTypes::Get().q;
  spec.num_sensors = 4;
  spec.events_per_sensor = 8;
  workload.AddStream(spec);
  spec.type = SensorTypes::Get().v;
  workload.AddStream(spec);

  auto query = SeqQV(ValuePred(CmpOp::kGe, 50.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto compiled = TranslatePattern(query.ValueOrDie(), {},
                                   workload.MakeSourceFactory());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  const JobGraph& graph = compiled.ValueOrDie().graph;
  const RangeAnalysis analysis =
      AnalyzeRanges(graph, workload.DeriveRangeCatalog());
  EXPECT_TRUE(analysis.report.ToStatus().ok())
      << analysis.report.ToString();

  const DiagnosticReport described = DescribeRanges(graph, analysis);
  EXPECT_GT(described.info_count(), 0);
  EXPECT_TRUE(described.Has(DiagnosticCode::kGraphRangeReport));
  EXPECT_EQ(described.error_count(), 0) << described.ToString();

  // The human-readable table mentions every node.
  const std::string table = analysis.ToString(graph);
  EXPECT_FALSE(table.empty());
}

TEST(RangeRulesTest, AttachRangeFactsSurfacesSelectivityBound) {
  Workload workload;
  StreamSpec spec;
  spec.type = SensorTypes::Get().q;
  spec.num_sensors = 4;
  spec.events_per_sensor = 8;
  workload.AddStream(spec);
  spec.type = SensorTypes::Get().v;
  workload.AddStream(spec);

  // value >= 50 over a [0, 100] uniform domain: bound must exist and be
  // well inside (0, 1).
  auto query = SeqQV(ValuePred(CmpOp::kGe, 50.0));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto compiled = TranslatePattern(query.ValueOrDie(), {},
                                   workload.MakeSourceFactory());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  JobGraph& graph = compiled.ValueOrDie().graph;
  const RangeAnalysis analysis =
      AnalyzeRanges(graph, workload.DeriveRangeCatalog());
  AttachRangeFacts(&graph, analysis);

  bool found_bound = false;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) continue;
    const double bound = node.op->Traits().selectivity_bound;
    if (bound >= 0.0 && bound < 1.0) found_bound = true;
  }
  EXPECT_TRUE(found_bound)
      << "no operator carries a derived selectivity bound <1:\n"
      << analysis.ToString(graph);
}

// --- Soundness: derived intervals contain every observed value ------------

TEST(RangeRulesTest, DerivedIntervalsContainAllGeneratedValues) {
  std::mt19937_64 rng(20260808);
  const SensorTypes types = SensorTypes::Get();

  for (int trial = 0; trial < 8; ++trial) {
    Workload workload;
    for (EventTypeId type : {types.q, types.v}) {
      StreamSpec spec;
      spec.type = type;
      spec.num_sensors = 1 + static_cast<int>(rng() % 6);
      spec.id_offset = static_cast<int64_t>(rng() % 100);
      spec.events_per_sensor = 4 + static_cast<int>(rng() % 24);
      spec.value_min = static_cast<double>(rng() % 50);
      spec.value_max = spec.value_min + 1.0 + static_cast<double>(rng() % 100);
      spec.seed = rng();
      workload.AddStream(spec);
    }
    const SourceRangeCatalog catalog = workload.DeriveRangeCatalog();

    // A threshold somewhere near the middle of the q value domain.
    const EventRanges* q_ranges = catalog.Find(types.q);
    ASSERT_NE(q_ranges, nullptr);
    const Interval q_values = (*q_ranges)[Attribute::kValue];
    const double threshold = (q_values.lo + q_values.hi) / 2.0;
    const Predicate q_filter = ValuePred(CmpOp::kGe, threshold);

    auto query = SeqQV(q_filter);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto compiled = TranslatePattern(query.ValueOrDie(), {},
                                     workload.MakeSourceFactory());
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    const JobGraph& graph = compiled.ValueOrDie().graph;
    const RangeAnalysis analysis = AnalyzeRanges(graph, catalog);
    ASSERT_EQ(analysis.nodes.size(), static_cast<size_t>(graph.num_nodes()));

    for (NodeId id = 0; id < graph.num_nodes(); ++id) {
      const JobGraph::Node& node = graph.node(id);
      const NodeRangeFacts& facts = analysis.nodes[static_cast<size_t>(id)];
      if (!node.is_source()) continue;
      ASSERT_TRUE(facts.computed) << "source node " << id;
      ASSERT_EQ(facts.slots.size(), 1u);
      for (const SimpleEvent& e : workload.events(node.source_type)) {
        for (int a = 0; a <= static_cast<int>(Attribute::kAuxTs); ++a) {
          const Attribute attr = static_cast<Attribute>(a);
          EXPECT_TRUE(facts.slots[0][attr].Contains(GetAttribute(e, attr)))
              << "trial " << trial << " node " << id << " attr " << a
              << ": " << GetAttribute(e, attr) << " outside "
              << facts.slots[0][attr].ToString();
        }
      }

      // One hop downstream: events surviving the leaf predicate must lie
      // in the successor's refined intervals (single-input stateless
      // successors only; anything the pass did not model is skipped).
      if (node.source_type != types.q) continue;
      for (const JobGraph::Edge& edge : node.outputs) {
        const NodeRangeFacts& next =
            analysis.nodes[static_cast<size_t>(edge.to)];
        if (!next.computed || next.dead || next.slots.size() != 1 ||
            graph.fan_in(edge.to) != 1) {
          continue;
        }
        for (const SimpleEvent& e : workload.events(node.source_type)) {
          if (!q_filter.EvalOnEvent(e)) continue;
          for (int a = 0; a <= static_cast<int>(Attribute::kAuxTs); ++a) {
            const Attribute attr = static_cast<Attribute>(a);
            EXPECT_TRUE(next.slots[0][attr].Contains(GetAttribute(e, attr)))
                << "trial " << trial << " filtered node " << edge.to
                << " attr " << a << ": " << GetAttribute(e, attr)
                << " outside " << next.slots[0][attr].ToString();
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace cep2asp
