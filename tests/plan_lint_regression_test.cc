// Regression: every paper evaluation pattern, under every optimization set
// the translator accepts, lints clean at all three analysis layers — and so
// does the FCEP baseline job. New rules that fire on shipped plans (or plan
// changes that trip existing rules) fail here before they reach the
// benchmarks.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "common/clock.h"
#include "harness/paper_patterns.h"
#include "runtime/vector_source.h"
#include "sea/parser.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

std::vector<std::pair<std::string, TranslatorOptions>> OptionSets() {
  std::vector<std::pair<std::string, TranslatorOptions>> sets;
  sets.emplace_back("baseline", TranslatorOptions{});
  TranslatorOptions o1;
  o1.use_interval_join = true;
  sets.emplace_back("O1", o1);
  TranslatorOptions o2;
  o2.use_aggregation_for_iter = true;
  sets.emplace_back("O2", o2);
  TranslatorOptions o3;
  o3.use_equi_join_keys = true;
  sets.emplace_back("O3", o3);
  TranslatorOptions all;
  all.use_interval_join = true;
  all.use_aggregation_for_iter = true;
  all.use_equi_join_keys = true;
  sets.emplace_back("O1+O2+O3", all);
  TranslatorOptions dedup;
  dedup.deduplicate_output = true;
  sets.emplace_back("dedup", dedup);
  return sets;
}

std::vector<std::pair<std::string, Result<Pattern>>> PaperQueries() {
  const Timestamp window = 15 * kMillisPerMinute;
  const Timestamp slide = kMillisPerMinute;
  PaperPatterns patterns;
  std::vector<std::pair<std::string, Result<Pattern>>> queries;
  queries.emplace_back("SEQ1", patterns.Seq1(0.5, window, slide));
  queries.emplace_back("ITER3_1", patterns.IterThreshold(3, 0.5, window, slide));
  queries.emplace_back("ITER3_2",
                       patterns.IterConsecutive(3, 0.5, window, slide));
  queries.emplace_back("NSEQ1", patterns.Nseq1(0.5, 0.5, window, slide));
  queries.emplace_back("SEQ4", patterns.SeqN(4, 0.5, window, slide));
  queries.emplace_back("SEQ7", patterns.Seq7(0.5, window, slide));
  queries.emplace_back("ITER4", patterns.Iter4(3, 0.5, window, slide));
  return queries;
}

TEST(PlanLintRegressionTest, AllPaperPlansLintClean) {
  int combinations_checked = 0;
  for (auto& [name, query] : PaperQueries()) {
    ASSERT_TRUE(query.ok()) << name << ": " << query.status().ToString();
    const Pattern& pattern = query.ValueOrDie();
    for (const auto& [set_name, options] : OptionSets()) {
      auto analysis = AnalyzeQuery(pattern, options);
      if (!analysis.ok()) {
        // The translator refuses some (pattern, option) combinations, e.g.
        // O2 aggregation under per-pair cross predicates. A refusal is not
        // a lint regression.
        continue;
      }
      const DiagnosticReport merged = analysis.ValueOrDie().Merged();
      EXPECT_TRUE(merged.empty())
          << name << " x " << set_name << ":\n" << merged.ToString();
      ++combinations_checked;
    }
  }
  // Guard against the translator silently refusing everything: most of the
  // 7 x 6 grid must actually have been analyzed.
  EXPECT_GE(combinations_checked, 30);
}

// The patterns shipped under examples/ (quickstart, air_quality,
// traffic_monitoring) must stay lint-clean too.
TEST(PlanLintRegressionTest, ExamplePatternsLintClean) {
  const SensorTypes types = SensorTypes::Get();

  std::vector<std::pair<std::string, Result<Pattern>>> queries;
  queries.emplace_back("quickstart",
                       sea::ParsePattern("PATTERN SEQ(Q q1, V v1) "
                                         "WHERE q1.value >= 80 AND "
                                         "v1.value <= 10 WITHIN 4 MINUTES"));
  queries.emplace_back(
      "air_quality",
      sea::ParsePattern("PATTERN SEQ(PM10 p1, !Hum h1, PM25 p2) "
                        "WHERE p1.value >= 85 AND h1.value >= 95 AND "
                        "p2.value >= 85 WITHIN 30 MINUTES"));

  {
    Predicate q_high;
    q_high.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGe, 75.0));
    PatternBuilder builder;
    builder.Seq(PatternBuilder::Atom(types.q, "q1", q_high),
                PatternBuilder::Iter(
                    types.v, "v", 3, Predicate(),
                    ConsecutiveConstraint{Attribute::kValue, CmpOp::kGt}));
    builder.Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                       {1, Attribute::kId}));
    builder.Where(Comparison::AttrAttr({1, Attribute::kId}, CmpOp::kEq,
                                       {2, Attribute::kId}));
    builder.Where(Comparison::AttrAttr({2, Attribute::kId}, CmpOp::kEq,
                                       {3, Attribute::kId}));
    queries.emplace_back("traffic_monitoring",
                         builder.Within(20 * kMillisPerMinute).Build());
  }

  int combinations_checked = 0;
  for (auto& [name, query] : queries) {
    ASSERT_TRUE(query.ok()) << name << ": " << query.status().ToString();
    for (const auto& [set_name, options] : OptionSets()) {
      auto analysis = AnalyzeQuery(query.ValueOrDie(), options);
      if (!analysis.ok()) continue;
      const DiagnosticReport merged = analysis.ValueOrDie().Merged();
      EXPECT_TRUE(merged.empty())
          << name << " x " << set_name << ":\n" << merged.ToString();
      ++combinations_checked;
    }
  }
  EXPECT_GE(combinations_checked, 6);
}

TEST(PlanLintRegressionTest, FcepBaselineJobsLintClean) {
  auto stub_sources = [](EventTypeId type) {
    return std::make_unique<VectorSource>("stub-" + std::to_string(type),
                                          std::vector<SimpleEvent>{});
  };
  int jobs_checked = 0;
  for (auto& [name, query] : PaperQueries()) {
    ASSERT_TRUE(query.ok()) << name << ": " << query.status().ToString();
    CepJobOptions options;
    options.store_matches = false;
    auto job = BuildCepJob(query.ValueOrDie(), stub_sources, options);
    if (!job.ok()) continue;  // FCEP cannot express every pattern (Table 2)
    const DiagnosticReport report = AnalyzeJobGraph(job.ValueOrDie().graph);
    EXPECT_TRUE(report.empty()) << name << ":\n" << report.ToString();
    ++jobs_checked;
  }
  EXPECT_GE(jobs_checked, 5);
}

}  // namespace
}  // namespace cep2asp
