// Randomized property tests: for many seeds and pattern classes, the
// translated ASP query (under every optimization combination), the
// order-based CEP engine (where FCEP supports the operator), and the
// formal SEA semantics must produce identical match sets after duplicate
// elimination — the paper's definition of semantic equivalence (§4).

#include <gtest/gtest.h>

#include "runtime/threaded_executor.h"
#include "tests/test_util.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

struct PropertyCase {
  std::string name;
  uint64_t seed;
  int sensors;
  Timestamp window;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.name;
}

class PropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    a_ = EventTypeRegistry::Global()->RegisterOrGet("PropA");
    b_ = EventTypeRegistry::Global()->RegisterOrGet("PropB");
    c_ = EventTypeRegistry::Global()->RegisterOrGet("PropC");
  }

  Workload MakeWorkload() {
    const PropertyCase& param = GetParam();
    Workload w;
    for (EventTypeId type : {a_, b_, c_}) {
      StreamSpec spec;
      spec.type = type;
      spec.num_sensors = param.sensors;
      spec.events_per_sensor = 50;
      spec.period = kMin;
      spec.seed = param.seed * 7919 + type;
      spec.align_to_period = true;  // slide = 1 min is lossless
      w.AddStream(spec);
    }
    return w;
  }

  Predicate Below(double threshold) {
    Predicate p;
    p.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, threshold));
    return p;
  }

  /// Checks FASP under four option sets + FCEP (if supported) + the
  /// threaded executor against the oracle.
  void CheckAllPaths(const Pattern& pattern, const Workload& workload,
                     bool fcep_supported) {
    auto oracle = test::OracleMatchSet(pattern, workload);

    struct OptionCase {
      const char* name;
      TranslatorOptions options;
    };
    TranslatorOptions o1;
    o1.use_interval_join = true;
    TranslatorOptions o3;
    o3.use_equi_join_keys = true;
    TranslatorOptions dedup;
    dedup.deduplicate_output = true;
    std::vector<OptionCase> cases = {
        {"plain", {}}, {"o1", o1}, {"o3", o3}, {"dedup", dedup}};
    for (const OptionCase& option_case : cases) {
      auto fasp = test::RunFasp(pattern, workload, option_case.options);
      ASSERT_TRUE(fasp.result.ok)
          << option_case.name << ": " << fasp.result.error;
      EXPECT_EQ(fasp.match_set, oracle) << "FASP options: " << option_case.name;
    }

    if (fcep_supported) {
      auto fcep = test::RunFcep(pattern, workload);
      ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
      EXPECT_EQ(fcep.match_set, oracle);
    }

    // Threaded executor: same plan, parallel pipeline, same match set.
    auto compiled =
        TranslatePattern(pattern, {}, workload.MakeSourceFactory());
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ThreadedExecutor threaded(&compiled->graph);
    ExecutionResult result = threaded.Run(compiled->sink);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(test::MatchSet(compiled->sink->tuples()), oracle)
        << "threaded executor";
  }

  EventTypeId a_ = 0, b_ = 0, c_ = 0;
};

TEST_P(PropertyTest, SeqTwoTypes) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1", Below(40)),
                       PatternBuilder::Atom(b_, "e2", Below(40)))
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/true);
}

TEST_P(PropertyTest, SeqThreeTypesWithCrossPredicate) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1", Below(50)),
                       PatternBuilder::Atom(b_, "e2", Below(50)),
                       PatternBuilder::Atom(c_, "e3", Below(50)))
                  .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
                                              {2, Attribute::kValue}))
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/true);
}

TEST_P(PropertyTest, Conjunction) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1", Below(30)),
                       PatternBuilder::Atom(b_, "e2", Below(30)))
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/false);
}

TEST_P(PropertyTest, Disjunction) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .Or(PatternBuilder::Atom(a_, "e1", Below(20)),
                      PatternBuilder::Atom(b_, "e2", Below(20)))
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/false);
}

TEST_P(PropertyTest, IterationBounded) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 3, Below(35)))
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/true);
}

TEST_P(PropertyTest, IterationWithConsecutiveConstraint) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Below(60),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/true);
}

TEST_P(PropertyTest, NegatedSequence) {
  Workload w = MakeWorkload();
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", Below(40)}, {b_, "e2", Below(25)},
                        {c_, "e3", Below(40)})
                  .Within(GetParam().window)
                  .Build()
                  .ValueOrDie();
  CheckAllPaths(p, w, /*fcep_supported=*/true);
}

TEST_P(PropertyTest, KeyedSequence) {
  Workload w = MakeWorkload();
  PatternBuilder builder;
  builder.Seq(PatternBuilder::Atom(a_, "e1", Below(60)),
              PatternBuilder::Atom(b_, "e2", Below(60)));
  builder.Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                     {1, Attribute::kId}));
  Pattern p = builder.Within(GetParam().window).Build().ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  for (bool o1 : {false, true}) {
    TranslatorOptions options;
    options.use_equi_join_keys = true;
    options.use_interval_join = o1;
    auto fasp = test::RunFasp(p, w, options);
    ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
    EXPECT_EQ(fasp.match_set, oracle) << "o1=" << o1;
  }
  CepJobOptions keyed;
  keyed.keyed = true;
  auto fcep = test::RunFcep(p, w, keyed);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertyTest,
    ::testing::Values(PropertyCase{"s1_narrow", 1, 1, 3 * kMin},
                      PropertyCase{"s2_mid", 2, 2, 5 * kMin},
                      PropertyCase{"s3_wide", 3, 1, 10 * kMin},
                      PropertyCase{"s4_multisensor", 4, 4, 5 * kMin},
                      PropertyCase{"s5_edgewindow", 5, 2, 7 * kMin}),
    CaseName);

}  // namespace
}  // namespace cep2asp
