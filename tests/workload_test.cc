#include <gtest/gtest.h>

#include <cstdio>

#include "workload/csv.h"
#include "workload/generator.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

TEST(GeneratorTest, ProducesRequestedVolume) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("GenA");
  spec.num_sensors = 4;
  spec.events_per_sensor = 25;
  auto events = GenerateStream(spec);
  EXPECT_EQ(events.size(), 100u);
}

TEST(GeneratorTest, TimestampsOrderedAndPerSensorIncreasing) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("GenB");
  spec.num_sensors = 8;
  spec.events_per_sensor = 50;
  auto events = GenerateStream(spec);
  Timestamp last_per_sensor[8] = {kMinTimestamp, kMinTimestamp, kMinTimestamp,
                                  kMinTimestamp, kMinTimestamp, kMinTimestamp,
                                  kMinTimestamp, kMinTimestamp};
  Timestamp last = kMinTimestamp;
  for (const SimpleEvent& e : events) {
    EXPECT_GE(e.ts, last);  // globally ordered
    last = e.ts;
    // §2.1: each producer emits strictly increasing timestamps.
    EXPECT_GT(e.ts, last_per_sensor[e.id]);
    last_per_sensor[e.id] = e.ts;
  }
}

TEST(GeneratorTest, StaggeredTimestampsAreStaggerMultiples) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("GenC");
  spec.num_sensors = 7;  // period not divisible by sensors
  spec.period = kMillisPerMinute;
  spec.events_per_sensor = 10;
  auto events = GenerateStream(spec);
  Timestamp stagger = spec.stagger();
  for (const SimpleEvent& e : events) {
    EXPECT_EQ(e.ts % stagger, 0) << "Theorem 2 slide condition";
  }
}

TEST(GeneratorTest, AlignedModeSharesTicks) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("GenD");
  spec.num_sensors = 5;
  spec.period = kMillisPerMinute;
  spec.events_per_sensor = 3;
  spec.align_to_period = true;
  auto events = GenerateStream(spec);
  for (const SimpleEvent& e : events) {
    EXPECT_EQ(e.ts % kMillisPerMinute, 0);
  }
}

TEST(GeneratorTest, ValuesWithinRangeAndDeterministic) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("GenE");
  spec.num_sensors = 2;
  spec.events_per_sensor = 100;
  spec.value_min = 10;
  spec.value_max = 20;
  auto a = GenerateStream(spec);
  auto b = GenerateStream(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].value, 10.0);
    EXPECT_LT(a[i].value, 20.0);
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);  // same seed, same stream
  }
  spec.seed = 99;
  auto c = GenerateStream(spec);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].value != c[i].value) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(GeneratorTest, FilterSelectivityMatchesThreshold) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("GenF");
  spec.num_sensors = 1;
  spec.events_per_sensor = 20000;
  auto events = GenerateStream(spec);
  int below = 0;
  for (const SimpleEvent& e : events) {
    if (e.value < 25.0) ++below;
  }
  // Uniform [0,100): value < 25 keeps ~25%.
  EXPECT_NEAR(static_cast<double>(below) / static_cast<double>(events.size()),
              0.25, 0.02);
}

TEST(WorkloadTest, MergedEventsOrdered) {
  PresetOptions preset;
  preset.num_sensors = 3;
  preset.events_per_sensor = 20;
  Workload w = MakeCombinedWorkload(preset);
  auto merged = w.MergedEvents();
  EXPECT_EQ(static_cast<int64_t>(merged.size()), w.TotalEvents());
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].ts, merged[i].ts);
  }
}

TEST(WorkloadTest, SourceFactoryServesKnownTypesOnly) {
  SensorTypes types = SensorTypes::Get();
  PresetOptions preset;
  preset.num_sensors = 1;
  preset.events_per_sensor = 5;
  Workload w = MakeQnVWorkload(preset);
  SourceFactory factory = w.MakeSourceFactory();
  EXPECT_NE(factory(types.q), nullptr);
  EXPECT_NE(factory(types.v), nullptr);
  EXPECT_EQ(factory(types.pm10), nullptr);
}

TEST(WorkloadTest, StatisticsReflectRates) {
  SensorTypes types = SensorTypes::Get();
  PresetOptions preset;
  preset.num_sensors = 10;
  preset.events_per_sensor = 100;
  Workload w = MakeQnVWorkload(preset);
  StreamStatistics stats = w.Statistics();
  // 10 sensors at one reading/minute: ~10 events per minute.
  EXPECT_NEAR(stats.EffectiveRate(types.q), 10.0, 1.5);
}

TEST(WorkloadTest, CombinedScalesAqRounds) {
  SensorTypes types = SensorTypes::Get();
  PresetOptions preset;
  preset.num_sensors = 1;
  preset.events_per_sensor = 80;  // 80 minutes of QnV
  Workload w = MakeCombinedWorkload(preset);
  // AQ at 4-minute period should cover a similar span with ~20 events.
  EXPECT_NEAR(static_cast<double>(w.events(types.pm10).size()), 20.0, 2.0);
}

// --- CSV -------------------------------------------------------------------

TEST(CsvTest, RoundTripPreservesEvents) {
  StreamSpec spec;
  spec.type = EventTypeRegistry::Global()->RegisterOrGet("CsvA");
  spec.num_sensors = 3;
  spec.events_per_sensor = 40;
  auto events = GenerateStream(spec);

  const std::string path = "/tmp/cep2asp_csv_test.csv";
  ASSERT_TRUE(WriteEventsCsv(path, events).ok());
  auto reloaded = ReadEventsCsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*reloaded)[i].type, events[i].type);
    EXPECT_EQ((*reloaded)[i].id, events[i].id);
    EXPECT_EQ((*reloaded)[i].ts, events[i].ts);
    EXPECT_NEAR((*reloaded)[i].value, events[i].value, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReported) {
  auto result = ReadEventsCsv("/tmp/definitely_missing_cep2asp.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MalformedLineReported) {
  const std::string path = "/tmp/cep2asp_bad.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("type,id,ts,value,lat,lon\nQ,1,not_a_ts,3.5,0,0\n", f);
    std::fclose(f);
  }
  auto result = ReadEventsCsv(path);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
  std::remove(path.c_str());
}

TEST(CsvTest, WrongFieldCountReported) {
  const std::string path = "/tmp/cep2asp_bad2.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("type,id,ts,value,lat,lon\nQ,1,5\n", f);
    std::fclose(f);
  }
  auto result = ReadEventsCsv(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cep2asp
