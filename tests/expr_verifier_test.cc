// ExprVerifier: every program the emitters produce must verify, and a
// corpus of mutated/malformed encodings must all be rejected. FromRaw
// bypasses the emitter deliberately — the verifier is the only line of
// defense for programs that did not come out of ExprProgram::Filter.
#include "event/expr_verifier.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "event/expr_program.h"
#include "event/predicate.h"

namespace cep2asp {
namespace {

ExprInsn Raw(ExprOp op, uint8_t a = 0, uint8_t b = 0, uint8_t c = 0,
             uint8_t d = 0, uint8_t e = 0, uint8_t imm = 0) {
  ExprInsn insn;
  insn.op = op;
  insn.a = a;
  insn.b = b;
  insn.c = c;
  insn.d = d;
  insn.e = e;
  insn.imm = imm;
  return insn;
}

ExprInsn Halt() { return Raw(ExprOp::kHalt); }

// --- well-formed programs ---------------------------------------------------

TEST(ExprVerifierTest, EmptyProgramVerifies) {
  EXPECT_TRUE(ExprVerifier::Verify(ExprProgram(), 1).ok());
}

TEST(ExprVerifierTest, EmitterFilterProgramsVerify) {
  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 0.5));
  pred.Add(Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLe,
                                {1, Attribute::kTs}));
  pred.Add(Comparison::AttrAttr({1, Attribute::kValue}, CmpOp::kGt,
                                {2, Attribute::kValue}, 3.0));

  for (const bool fuse : {true, false}) {
    const ExprProgram positional =
        ExprProgram::Filter(pred, ExprProgram::VarMode::kPositional, fuse);
    ASSERT_TRUE(positional.ok());
    EXPECT_TRUE(ExprVerifier::Verify(positional, 3).ok())
        << (fuse ? "fused" : "unfused") << ":\n" << positional.ToString();

    const ExprProgram broadcast =
        ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast, fuse);
    ASSERT_TRUE(broadcast.ok());
    // Broadcast resolves every variable to event 0, so one event suffices.
    EXPECT_TRUE(ExprVerifier::Verify(broadcast, 1).ok());
  }
}

TEST(ExprVerifierTest, EmitterKeyAndFusedProgramsVerify) {
  const ExprProgram by_attr = ExprProgram::KeyByAttribute(1, Attribute::kId);
  ASSERT_TRUE(by_attr.ok());
  EXPECT_TRUE(ExprVerifier::Verify(by_attr, 2).ok());

  const ExprProgram by_const = ExprProgram::KeyByConstant(42);
  ASSERT_TRUE(by_const.ok());
  EXPECT_TRUE(ExprVerifier::Verify(by_const, 1).ok());

  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGe, 10.0));
  const ExprProgram fused = ExprProgram::Fuse(
      ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast), by_const);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(ExprVerifier::Verify(fused, 1).ok()) << fused.ToString();
}

// Property: any predicate the builder can express compiles (fused and
// unfused, both variable modes) to a program the verifier accepts.
TEST(ExprVerifierTest, RandomizedEmitterProgramsVerify) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> var_dist(0, 3);
  std::uniform_int_distribution<int> attr_dist(
      0, static_cast<int>(Attribute::kAuxTs));
  std::uniform_int_distribution<int> cmp_dist(0,
                                              static_cast<int>(CmpOp::kNe));
  std::uniform_real_distribution<double> const_dist(-1e6, 1e6);
  std::uniform_int_distribution<int> terms_dist(0, 6);
  std::bernoulli_distribution attr_rhs(0.5);
  std::bernoulli_distribution with_offset(0.3);

  for (int trial = 0; trial < 200; ++trial) {
    Predicate pred;
    const int num_terms = terms_dist(rng);
    for (int t = 0; t < num_terms; ++t) {
      const AttrRef lhs{var_dist(rng),
                        static_cast<Attribute>(attr_dist(rng))};
      const CmpOp op = static_cast<CmpOp>(cmp_dist(rng));
      if (attr_rhs(rng)) {
        const AttrRef rhs{var_dist(rng),
                          static_cast<Attribute>(attr_dist(rng))};
        pred.Add(Comparison::AttrAttr(
            lhs, op, rhs, with_offset(rng) ? const_dist(rng) : 0.0));
      } else {
        pred.Add(Comparison::AttrConst(lhs, op, const_dist(rng)));
      }
    }
    for (const bool fuse : {true, false}) {
      const ExprProgram pos =
          ExprProgram::Filter(pred, ExprProgram::VarMode::kPositional, fuse);
      ASSERT_TRUE(pos.ok());
      EXPECT_TRUE(ExprVerifier::Verify(pos, 4).ok())
          << "trial " << trial << ":\n" << pos.ToString();
      const ExprProgram bcast =
          ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast, fuse);
      ASSERT_TRUE(bcast.ok());
      EXPECT_TRUE(ExprVerifier::Verify(bcast, 1).ok())
          << "trial " << trial << ":\n" << bcast.ToString();
    }
  }
}

// --- mutation corpus: every malformed encoding is rejected ------------------

TEST(ExprVerifierTest, RejectsTruncatedProgram) {
  // A filter with its trailing kHalt chopped off falls through.
  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 1.0));
  const ExprProgram full =
      ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast);
  std::vector<ExprInsn> code = full.code();
  ASSERT_FALSE(code.empty());
  code.pop_back();
  const ExprProgram mutant =
      ExprProgram::FromRaw(code, full.const_pool(), full.key_pool());
  const Status status = ExprVerifier::Verify(mutant, 1);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("falls through"), std::string::npos)
      << status.message();
}

TEST(ExprVerifierTest, RejectsCodeAfterHalt) {
  const ExprProgram mutant = ExprProgram::FromRaw(
      {Halt(), Raw(ExprOp::kLoadConst)}, {1.0}, {});
  EXPECT_FALSE(ExprVerifier::Verify(mutant, 1).ok());
}

TEST(ExprVerifierTest, RejectsUndefinedOpcode) {
  ExprInsn bogus = Halt();
  bogus.op = static_cast<ExprOp>(250);
  const ExprProgram mutant = ExprProgram::FromRaw({bogus, Halt()}, {}, {});
  EXPECT_FALSE(ExprVerifier::Verify(mutant, 1).ok());
}

TEST(ExprVerifierTest, RejectsEventOperandOutOfRange) {
  // load e2.value with only 2 declared events (valid slots 0..1).
  const ExprProgram mutant = ExprProgram::FromRaw(
      {Raw(ExprOp::kCmpAttrConstFail, /*a=*/2,
           static_cast<uint8_t>(Attribute::kValue),
           static_cast<uint8_t>(CmpOp::kLt), 0, 0, 0),
       Halt()},
      {1.0}, {});
  EXPECT_FALSE(ExprVerifier::Verify(mutant, 2).ok());
  EXPECT_TRUE(ExprVerifier::Verify(mutant, 3).ok());
}

TEST(ExprVerifierTest, RejectsBadAttributeAndBadCmp) {
  const ExprProgram bad_attr = ExprProgram::FromRaw(
      {Raw(ExprOp::kLoadAttr, 0, /*b=*/17), Raw(ExprOp::kAndFail), Halt()},
      {}, {});
  EXPECT_FALSE(ExprVerifier::Verify(bad_attr, 1).ok());

  const ExprProgram bad_cmp = ExprProgram::FromRaw(
      {Raw(ExprOp::kCmpAttrConstFail, 0,
           static_cast<uint8_t>(Attribute::kValue), /*c=*/9, 0, 0, 0),
       Halt()},
      {1.0}, {});
  EXPECT_FALSE(ExprVerifier::Verify(bad_cmp, 1).ok());
}

TEST(ExprVerifierTest, RejectsPoolIndexOutOfRange) {
  const ExprProgram bad_const = ExprProgram::FromRaw(
      {Raw(ExprOp::kLoadConst, 0, 0, 0, 0, 0, /*imm=*/3),
       Raw(ExprOp::kAndFail), Halt()},
      {1.0}, {});
  EXPECT_FALSE(ExprVerifier::Verify(bad_const, 1).ok());

  const ExprProgram bad_key = ExprProgram::FromRaw(
      {Raw(ExprOp::kStoreKeyConst, 0, 0, 0, 0, 0, /*imm=*/0), Halt()}, {},
      {});
  EXPECT_FALSE(ExprVerifier::Verify(bad_key, 1).ok());
}

TEST(ExprVerifierTest, RejectsStackUnderflowAndOverflow) {
  // kCmp needs two operands; an empty stack underflows.
  const ExprProgram underflow = ExprProgram::FromRaw(
      {Raw(ExprOp::kCmp, static_cast<uint8_t>(CmpOp::kLt)), Halt()}, {}, {});
  EXPECT_FALSE(ExprVerifier::Verify(underflow, 1).ok());

  // kAndFail pops; nothing was pushed.
  const ExprProgram underflow2 =
      ExprProgram::FromRaw({Raw(ExprOp::kAndFail), Halt()}, {}, {});
  EXPECT_FALSE(ExprVerifier::Verify(underflow2, 1).ok());

  // Nine pushes overflow the 8-slot evaluation stack.
  std::vector<ExprInsn> code(9, Raw(ExprOp::kLoadConst));
  code.push_back(Halt());
  const ExprProgram overflow = ExprProgram::FromRaw(code, {1.0}, {});
  EXPECT_FALSE(ExprVerifier::Verify(overflow, 1).ok());
}

TEST(ExprVerifierTest, RejectsNonEmptyStackAtHalt) {
  const ExprProgram mutant =
      ExprProgram::FromRaw({Raw(ExprOp::kLoadConst), Halt()}, {1.0}, {});
  EXPECT_FALSE(ExprVerifier::Verify(mutant, 1).ok());
}

TEST(ExprVerifierTest, RejectsFailedCompilationAndZeroEvents) {
  // 256 distinct constants overflow the 8-bit pool: compilation fails and
  // the verifier refuses the carcass.
  Predicate pred;
  for (int i = 0; i < 300; ++i) {
    pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt,
                                   static_cast<double>(i)));
  }
  const ExprProgram failed =
      ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(ExprVerifier::Verify(failed, 1).ok());

  EXPECT_FALSE(
      ExprVerifier::Verify(ExprProgram::KeyByConstant(1), 0).ok());
}

// Random byte-level mutations of valid programs must never verify as
// something the executor would then run out of bounds: every accepted
// mutant must still execute safely (spot check: accepted implies its
// operand fields are in range by construction of the verifier, so here we
// only require that rejection dominates and acceptance never crashes).
TEST(ExprVerifierTest, RandomMutationsEitherRejectOrStaySafe) {
  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 0.5));
  pred.Add(Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLe,
                                {1, Attribute::kTs}));
  const ExprProgram base =
      ExprProgram::Filter(pred, ExprProgram::VarMode::kPositional);
  ASSERT_TRUE(ExprVerifier::Verify(base, 2).ok());

  std::mt19937_64 rng(7);
  std::uniform_int_distribution<size_t> insn_dist(0, base.code().size() - 1);
  std::uniform_int_distribution<int> field_dist(0, 6);
  std::uniform_int_distribution<int> byte_dist(0, 255);

  SimpleEvent events[2] = {};
  int accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<ExprInsn> code = base.code();
    ExprInsn& victim = code[insn_dist(rng)];
    const uint8_t value = static_cast<uint8_t>(byte_dist(rng));
    switch (field_dist(rng)) {
      case 0: victim.op = static_cast<ExprOp>(value); break;
      case 1: victim.a = value; break;
      case 2: victim.b = value; break;
      case 3: victim.c = value; break;
      case 4: victim.d = value; break;
      case 5: victim.e = value; break;
      default: victim.imm = value; break;
    }
    const ExprProgram mutant =
        ExprProgram::FromRaw(code, base.const_pool(), base.key_pool());
    if (ExprVerifier::Verify(mutant, 2).ok()) {
      ++accepted;
      // Verified implies executable: all operands proved in range.
      (void)mutant.EvalOnEvents(events, 2);
    }
  }
  // Most random byte smashes corrupt an invariant; a few (e.g. flipping a
  // CmpOp to another valid CmpOp) legitimately still verify.
  EXPECT_LT(accepted, 250);
}

}  // namespace
}  // namespace cep2asp
