// Columnar (SoA) execution tests: RunColumnar over a ColumnarBatch must be
// observationally identical to the row-major RunBatch path for every fused
// program over every input — including NaN / ±inf attribute values, all six
// comparators, and key-assigning programs — and the gather/scatter shims
// must reproduce rows bit-for-bit. The SIMD kernels (when CEP2ASP_SIMD is
// on) and the scalar fallback share these tests: the mask is the contract.

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "asp/compiled_stateless.h"
#include "asp/sliding_window_join.h"
#include "event/expr_program.h"
#include "event/expr_verifier.h"
#include "event/predicate.h"
#include "runtime/columnar_batch.h"
#include "runtime/job_graph.h"
#include "runtime/operator.h"

namespace cep2asp {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

double RandomMeasure(std::mt19937_64& rng, bool allow_non_finite) {
  static const double kFinite[] = {0.0,  -0.0, 0.5,    -1.25, 3.0,
                                   42.0, 59.9, 60.0,   100.0, -273.15,
                                   1e6,  1e-9, -1e300, 7.25,  13.0};
  static const double kSpecial[] = {kNaN, kInf, -kInf};
  if (allow_non_finite && rng() % 8 == 0) return kSpecial[rng() % 3];
  return kFinite[rng() % (sizeof(kFinite) / sizeof(kFinite[0]))];
}

SimpleEvent RandomEvent(std::mt19937_64& rng, bool allow_non_finite) {
  SimpleEvent e;
  e.type = static_cast<EventTypeId>(1 + rng() % 3);
  e.id = static_cast<int64_t>(rng() % 8);
  e.ts = static_cast<Timestamp>(rng() % 10000);
  e.aux_ts = static_cast<Timestamp>(rng() % 10000);
  e.create_ts = static_cast<Timestamp>(rng() % 10000);
  e.value = RandomMeasure(rng, allow_non_finite);
  e.lat = RandomMeasure(rng, allow_non_finite);
  e.lon = RandomMeasure(rng, allow_non_finite);
  return e;
}

Attribute RandomAttr(std::mt19937_64& rng) {
  static const Attribute kAttrs[] = {Attribute::kValue, Attribute::kLat,
                                     Attribute::kLon,   Attribute::kTs,
                                     Attribute::kId,    Attribute::kAuxTs};
  return kAttrs[rng() % 6];
}

CmpOp RandomCmpOp(std::mt19937_64& rng) {
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  return kOps[rng() % 6];
}

Predicate RandomPredicate(std::mt19937_64& rng, int arity) {
  Predicate pred;
  const int terms = static_cast<int>(rng() % 6);
  for (int i = 0; i < terms; ++i) {
    const AttrRef lhs{static_cast<int>(rng() % static_cast<unsigned>(arity)),
                      RandomAttr(rng)};
    const CmpOp op = RandomCmpOp(rng);
    if (rng() % 2 == 0) {
      const AttrRef rhs{static_cast<int>(rng() % static_cast<unsigned>(arity)),
                        RandomAttr(rng)};
      static const double kOffsets[] = {0.0, 0.0, 0.5, -17.0, 1000.0};
      pred.Add(Comparison::AttrAttr(lhs, op, rhs, kOffsets[rng() % 5]));
    } else {
      pred.Add(Comparison::AttrConst(lhs, op,
                                     RandomMeasure(rng, /*non_finite=*/true)));
    }
  }
  return pred;
}

Tuple RandomTuple(std::mt19937_64& rng, int arity, bool allow_non_finite) {
  Tuple t;
  for (int i = 0; i < arity; ++i) {
    t.AppendEvent(RandomEvent(rng, allow_non_finite));
  }
  t.set_event_time(static_cast<Timestamp>(rng() % 10000));
  t.set_key(static_cast<int64_t>(rng() % 100));
  return t;
}

/// Bitwise-aware double equality: NaN == NaN, -0.0 != +0.0 is fine here
/// because the gather writes the same bit pattern it read.
bool SameDouble(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void ExpectSameTuple(const Tuple& a, const Tuple& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a.event_time(), b.event_time());
  for (size_t i = 0; i < a.size(); ++i) {
    const SimpleEvent& ea = a.event(i);
    const SimpleEvent& eb = b.event(i);
    EXPECT_EQ(ea.type, eb.type);
    EXPECT_EQ(ea.id, eb.id);
    EXPECT_EQ(ea.ts, eb.ts);
    EXPECT_EQ(ea.create_ts, eb.create_ts);
    EXPECT_EQ(ea.aux_ts, eb.aux_ts);
    EXPECT_TRUE(SameDouble(ea.value, eb.value));
    EXPECT_TRUE(SameDouble(ea.lat, eb.lat));
    EXPECT_TRUE(SameDouble(ea.lon, eb.lon));
  }
}

class VectorCollector : public Collector {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

std::map<std::string, int> Multiset(const std::vector<Tuple>& tuples) {
  std::map<std::string, int> ms;
  for (const Tuple& t : tuples) {
    ++ms[MatchKey(t) + "#" + std::to_string(t.key())];
  }
  return ms;
}

// RunColumnar's mask must equal RunBatch's mask for every fused program
// over every input pattern, all six comparators and the IEEE specials
// included — the differential property gating the whole SoA path.
TEST(ColumnarTest, RunColumnarMatchesRowMajorRunBatch) {
  std::mt19937_64 rng(0xc01c0001);
  for (int iter = 0; iter < 300; ++iter) {
    const int arity = 1 + static_cast<int>(rng() % 4);
    const Predicate pred = RandomPredicate(rng, arity);
    const ExprProgram program =
        ExprProgram::Filter(pred, ExprProgram::VarMode::kPositional);
    ASSERT_TRUE(program.ok()) << pred.ToString();
    ASSERT_TRUE(program.IsColumnarExecutable()) << program.ToString();

    const size_t n = rng() % 70;
    std::vector<Tuple> tuples;
    ColumnarBatch batch(static_cast<size_t>(arity));
    batch.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tuples.push_back(RandomTuple(rng, arity, /*non_finite=*/true));
      batch.AppendTuple(tuples.back());
    }

    std::vector<uint8_t> row_mask(n == 0 ? 1 : n, 0);
    program.RunBatch(tuples.data(), sizeof(Tuple), n, row_mask.data());

    ASSERT_TRUE(program.RunColumnar(batch.View())) << program.ToString();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch.mask()[i] != 0, row_mask[i] != 0)
          << "row " << i << "\n" << pred.ToString() << "\n"
          << program.ToString();
    }
  }
}

// Key-assigning programs must write the same keys column-wise that Run
// writes tuple-wise, and constant keys stay exact int64.
TEST(ColumnarTest, ColumnarKeyStoresMatchRowMajor) {
  std::mt19937_64 rng(0xc01c0002);
  static const Attribute kKeyAttrs[] = {Attribute::kId, Attribute::kTs,
                                        Attribute::kAuxTs};
  for (int iter = 0; iter < 100; ++iter) {
    const Predicate pred = RandomPredicate(rng, 1);
    ExprProgram fused;
    int64_t const_key = 0;
    const bool constant = rng() % 4 == 0;
    if (constant) {
      const_key = static_cast<int64_t>(rng()) | (int64_t{1} << 62);
      fused = ExprProgram::Fuse(
          ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast),
          ExprProgram::KeyByConstant(const_key));
    } else {
      fused = ExprProgram::Fuse(
          ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast),
          ExprProgram::KeyByAttribute(0, kKeyAttrs[rng() % 3]));
    }
    ASSERT_TRUE(fused.ok());
    ASSERT_TRUE(fused.assigns_key());

    const size_t n = 1 + rng() % 50;
    std::vector<Tuple> tuples;
    ColumnarBatch batch(1);
    for (size_t i = 0; i < n; ++i) {
      // Measurements may be non-finite; key attributes are integral.
      tuples.push_back(RandomTuple(rng, 1, /*non_finite=*/true));
      batch.AppendTuple(tuples.back());
    }
    ASSERT_TRUE(fused.RunColumnar(batch.View()));
    for (size_t i = 0; i < n; ++i) {
      Tuple row = tuples[i];
      const bool pass = fused.Run(&row);
      ASSERT_EQ(batch.mask()[i] != 0, pass);
      if (pass) {
        EXPECT_EQ(batch.keys()[i], row.key());
        if (constant) {
          EXPECT_EQ(batch.keys()[i], const_key);
        }
      }
    }
  }
}

// Stack-form programs are row-major only: IsColumnarExecutable is false,
// RunColumnar refuses without touching the mask, VerifyColumnar reports
// the offending instruction while plain Verify still accepts.
TEST(ColumnarTest, StackFormProgramsAreRejected) {
  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 10.0));
  const ExprProgram stack_form = ExprProgram::Filter(
      pred, ExprProgram::VarMode::kBroadcast, /*fuse_terms=*/false);
  ASSERT_TRUE(stack_form.ok());
  EXPECT_FALSE(stack_form.IsColumnarExecutable());
  EXPECT_TRUE(ExprVerifier::Verify(stack_form, 1).ok());
  EXPECT_FALSE(ExprVerifier::VerifyColumnar(stack_form, 1).ok());

  ColumnarBatch batch(1);
  batch.AppendTuple(Tuple(SimpleEvent{}));
  batch.mask()[0] = 0;  // must stay untouched by the refusal
  EXPECT_FALSE(stack_form.RunColumnar(batch.View()));
  EXPECT_EQ(batch.mask()[0], 0);

  const ExprProgram fused =
      ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast);
  EXPECT_TRUE(fused.IsColumnarExecutable());
  EXPECT_TRUE(ExprVerifier::VerifyColumnar(fused, 1).ok());
}

// Gather -> scatter must reproduce every row bit-for-bit (types, ids,
// timestamps, keys, event times, and non-finite measurements included).
TEST(ColumnarTest, GatherScatterRoundTripIsExact) {
  std::mt19937_64 rng(0xc01c0003);
  for (int arity = 1; arity <= 3; ++arity) {
    ColumnarBatch batch(static_cast<size_t>(arity));
    std::vector<Tuple> tuples;
    for (int i = 0; i < 40; ++i) {
      tuples.push_back(RandomTuple(rng, arity, /*non_finite=*/true));
      batch.AppendTuple(tuples.back());
    }
    ASSERT_EQ(batch.rows(), tuples.size());
    for (size_t i = 0; i < tuples.size(); ++i) {
      ExpectSameTuple(batch.RowTuple(i), tuples[i]);
    }
  }
}

// Compact drops unselected rows in place, keeps survivor order, and
// re-selects the survivors.
TEST(ColumnarTest, CompactKeepsSurvivorsInOrder) {
  std::mt19937_64 rng(0xc01c0004);
  ColumnarBatch batch(1);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 64; ++i) {
    tuples.push_back(RandomTuple(rng, 1, /*non_finite=*/false));
    batch.AppendTuple(tuples.back());
  }
  std::vector<size_t> keep;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (rng() % 3 != 0) {
      keep.push_back(i);
    } else {
      batch.mask()[i] = 0;
    }
  }
  ASSERT_EQ(batch.Compact(), keep.size());
  ASSERT_EQ(batch.rows(), keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(batch.mask()[i], 1);
    ExpectSameTuple(batch.RowTuple(i), tuples[keep[i]]);
  }
  // Reset keeps capacity but drops rows.
  batch.Reset(2);
  EXPECT_EQ(batch.rows(), 0u);
  EXPECT_EQ(batch.num_slots(), 2u);
}

// The compiled operator's columnar path must emit the same multiset the
// row-major batch path emits, through the default scatter shim.
TEST(ColumnarTest, ProcessColumnarMatchesProcessBatch) {
  std::mt19937_64 rng(0xc01c0005);
  static const Attribute kKeyAttrs[] = {Attribute::kId, Attribute::kTs,
                                        Attribute::kAuxTs};
  for (int iter = 0; iter < 100; ++iter) {
    const Predicate pred = RandomPredicate(rng, 1);
    ExprProgram fused = ExprProgram::Fuse(
        ExprProgram::Filter(pred, ExprProgram::VarMode::kBroadcast),
        ExprProgram::KeyByAttribute(0, kKeyAttrs[rng() % 3]));
    ASSERT_TRUE(fused.ok());
    CompiledStatelessOperator compiled(std::move(fused), "filter+key");
    ASSERT_TRUE(compiled.Traits().columnar_capable);

    const size_t n = rng() % 65;
    std::vector<Tuple> inputs;
    MessageBatch rows;
    auto block = std::make_unique<ColumnarBatch>(1);
    for (size_t i = 0; i < n; ++i) {
      inputs.push_back(RandomTuple(rng, 1, /*non_finite=*/true));
      rows.push_back(Message::Data(0, inputs.back()));
      block->AppendTuple(inputs.back());
    }

    VectorCollector row_out;
    ASSERT_TRUE(compiled.ProcessBatch(0, &rows, &row_out).ok());
    VectorCollector col_out;
    ASSERT_TRUE(compiled.ProcessColumnar(0, std::move(block), &col_out).ok());
    EXPECT_EQ(Multiset(col_out.tuples), Multiset(row_out.tuples))
        << pred.ToString();
  }
}

// The batched splitmix64 router (SIMD kernels when CEP2ASP_SIMD is on)
// must be bit-identical to the scalar KeyToSubtask for arbitrary 64-bit
// keys — including negatives, values beyond 2^53, and the int64 extremes —
// at every parallelism, every count (SIMD tails included).
TEST(ColumnarTest, KeyToSubtaskBatchMatchesScalar) {
  std::mt19937_64 rng(0xc01c0006);
  std::vector<int64_t> keys;
  for (int i = 0; i < 1200; ++i) {
    switch (rng() % 5) {
      case 0:
        keys.push_back(static_cast<int64_t>(rng() % 100));
        break;
      case 1:
        keys.push_back(static_cast<int64_t>(rng()));  // full 64-bit pattern
        break;
      case 2:
        keys.push_back((int64_t{1} << 53) + static_cast<int64_t>(rng() % 999));
        break;
      case 3:
        keys.push_back(-static_cast<int64_t>(rng() % 999));
        break;
      default:
        keys.push_back(rng() % 2 ? std::numeric_limits<int64_t>::max()
                                 : std::numeric_limits<int64_t>::min());
        break;
    }
  }
  for (int p : {1, 2, 3, 4, 7, 16, 64}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{255}, size_t{256},
                     size_t{257}, keys.size()}) {
      std::vector<int32_t> out(n == 0 ? 1 : n, -1);
      KeyToSubtaskBatch(keys.data(), n, p, out.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], KeyToSubtask(keys[i], p))
            << "key=" << keys[i] << " p=" << p << " n=" << n;
      }
    }
  }
}

// PartitionByKey must reproduce row-at-a-time KeyToSubtask routing
// exactly: per target subtask the same rows in the same order,
// bit-for-bit (non-finite measurements included), masked-off rows
// dropped, empty buckets null — and exact routing for keys the double
// mantissa cannot hold.
TEST(ColumnarTest, PartitionByKeyMatchesRowMajorRouting) {
  std::mt19937_64 rng(0xc01c0007);
  for (int iter = 0; iter < 80; ++iter) {
    const int arity = 1 + static_cast<int>(rng() % 3);
    const int p = 1 + static_cast<int>(rng() % 5);
    const size_t n = rng() % 80;
    ColumnarBatch batch(static_cast<size_t>(arity));
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < n; ++i) {
      Tuple t = RandomTuple(rng, arity, /*non_finite=*/true);
      if (rng() % 4 == 0) {
        t.set_key((int64_t{1} << 53) + static_cast<int64_t>(rng() % 7));
      } else if (rng() % 8 == 0) {
        t.set_key(static_cast<int64_t>(rng()));
      }
      tuples.push_back(t);
      batch.AppendTuple(t);
    }
    std::vector<uint8_t> live(n, 1);
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 5 == 0) {
        live[i] = 0;
        batch.mask()[i] = 0;
      }
    }

    auto parts = batch.PartitionByKey(p);
    ASSERT_EQ(parts.size(), static_cast<size_t>(p));
    std::vector<std::vector<size_t>> expect(static_cast<size_t>(p));
    for (size_t i = 0; i < n; ++i) {
      if (live[i]) {
        expect[static_cast<size_t>(KeyToSubtask(tuples[i].key(), p))]
            .push_back(i);
      }
    }
    for (int s = 0; s < p; ++s) {
      const std::vector<size_t>& want = expect[static_cast<size_t>(s)];
      if (want.empty()) {
        EXPECT_EQ(parts[static_cast<size_t>(s)], nullptr) << "subtask " << s;
        continue;
      }
      ASSERT_NE(parts[static_cast<size_t>(s)], nullptr) << "subtask " << s;
      const ColumnarBatch& part = *parts[static_cast<size_t>(s)];
      ASSERT_EQ(part.rows(), want.size()) << "subtask " << s;
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(part.mask()[j], 1);
        EXPECT_EQ(part.keys()[j], tuples[want[j]].key());
        ExpectSameTuple(part.RowTuple(j), tuples[want[j]]);
      }
    }
  }
}

// The join's columnar ingest must be observationally identical to
// per-tuple Process: same emission sequence, same pairs_evaluated, same
// state-byte accounting — across random window specs, conditions,
// timestamp modes, dedup settings, key runs, block boundaries, and
// interleaved watermarks.
TEST(ColumnarTest, JoinProcessColumnarMatchesRowMajorIngest) {
  std::mt19937_64 rng(0xc01c0008);
  for (int iter = 0; iter < 40; ++iter) {
    const int l_arity = 1 + static_cast<int>(rng() % 2);
    const int r_arity = 1 + static_cast<int>(rng() % 2);
    const Timestamp slide = 5 * (1 + static_cast<Timestamp>(rng() % 4));
    const SlidingWindowSpec spec{slide * (1 + static_cast<Timestamp>(rng() % 5)),
                                 slide};
    const Predicate cond = RandomPredicate(rng, l_arity + r_arity);
    const TimestampMode mode =
        rng() % 2 ? TimestampMode::kMax : TimestampMode::kMin;
    const bool dedup = rng() % 2 == 0;
    SlidingWindowJoinOperator row_op(spec, cond, mode, "row", dedup);
    SlidingWindowJoinOperator col_op(spec, cond, mode, "col", dedup);
    ASSERT_TRUE(row_op.Open().ok());
    ASSERT_TRUE(col_op.Open().ok());
    VectorCollector row_out;
    VectorCollector col_out;

    Timestamp max_ts = 0;
    const int steps = 1 + static_cast<int>(rng() % 8);
    for (int st = 0; st < steps; ++st) {
      const int input = static_cast<int>(rng() % 2);
      const int arity = input == 0 ? l_arity : r_arity;
      const size_t rows = rng() % 30;
      auto block = std::make_unique<ColumnarBatch>(static_cast<size_t>(arity));
      std::vector<Tuple> batch_tuples;
      for (size_t i = 0; i < rows; ++i) {
        Tuple t = RandomTuple(rng, arity, /*non_finite=*/true);
        // Few keys so runs form and both sides meet; occasionally a key
        // beyond the double-exact range.
        t.set_key(static_cast<int64_t>(rng() % 4));
        if (rng() % 16 == 0) t.set_key((int64_t{1} << 53) + 3);
        t.set_event_time(static_cast<Timestamp>(rng() % 200));
        max_ts = std::max(max_ts, t.event_time());
        batch_tuples.push_back(t);
        block->AppendTuple(t);
      }
      for (Tuple& t : batch_tuples) {
        ASSERT_TRUE(row_op.Process(input, t, &row_out).ok());
      }
      ASSERT_TRUE(
          col_op.ProcessColumnar(input, std::move(block), &col_out).ok());
      if (rng() % 3 == 0) {
        const Timestamp wm = static_cast<Timestamp>(rng() % 220);
        ASSERT_TRUE(row_op.OnWatermark(wm, &row_out).ok());
        ASSERT_TRUE(col_op.OnWatermark(wm, &col_out).ok());
      }
    }
    const Timestamp final_wm = max_ts + spec.size + spec.slide + 1;
    ASSERT_TRUE(row_op.OnWatermark(final_wm, &row_out).ok());
    ASSERT_TRUE(col_op.OnWatermark(final_wm, &col_out).ok());

    EXPECT_EQ(col_op.pairs_evaluated(), row_op.pairs_evaluated());
    EXPECT_EQ(col_op.StateBytes(), row_op.StateBytes());
    ASSERT_EQ(col_out.tuples.size(), row_out.tuples.size())
        << "iter " << iter << " " << cond.ToString();
    for (size_t i = 0; i < row_out.tuples.size(); ++i) {
      ExpectSameTuple(col_out.tuples[i], row_out.tuples[i]);
    }
  }
}

}  // namespace
}  // namespace cep2asp
