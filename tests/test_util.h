#ifndef CEP2ASP_TESTS_TEST_UTIL_H_
#define CEP2ASP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "sea/semantics.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp::test {

/// Shorthand event constructor.
inline SimpleEvent Ev(EventTypeId type, int64_t id, Timestamp ts,
                      double value = 0.0) {
  SimpleEvent e;
  e.type = type;
  e.id = id;
  e.ts = ts;
  e.value = value;
  return e;
}

/// Sorted, de-duplicated match identities (the paper's semantic
/// equivalence is set equality after duplicate elimination).
inline std::vector<std::string> MatchSet(const std::vector<Tuple>& tuples) {
  std::vector<std::string> keys;
  keys.reserve(tuples.size());
  for (const Tuple& t : tuples) keys.push_back(MatchKey(t));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Sorted match identities *with* duplicates retained: the multiset of raw
/// emissions. Stricter than MatchSet — used to assert that operational
/// knobs (parallelism, batching) change neither the match set nor the
/// per-overlap duplication the sliding semantics prescribes.
inline std::vector<std::string> MatchMultiset(const std::vector<Tuple>& tuples) {
  std::vector<std::string> keys;
  keys.reserve(tuples.size());
  for (const Tuple& t : tuples) keys.push_back(MatchKey(t));
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct RunOutcome {
  ExecutionResult result;
  std::vector<std::string> match_set;
  int64_t raw_emissions = 0;
};

/// Translates, compiles, and runs a FASP query over the workload.
inline RunOutcome RunFasp(const Pattern& pattern, const Workload& workload,
                          TranslatorOptions options = {}) {
  RunOutcome outcome;
  auto compiled =
      TranslatePattern(pattern, options, workload.MakeSourceFactory());
  if (!compiled.ok()) {
    outcome.result.ok = false;
    outcome.result.error = compiled.status().ToString();
    return outcome;
  }
  outcome.result = RunJob(&compiled->graph, compiled->sink);
  outcome.raw_emissions = compiled->sink->count();
  outcome.match_set = MatchSet(compiled->sink->tuples());
  return outcome;
}

/// Builds and runs the FCEP baseline job.
inline RunOutcome RunFcep(const Pattern& pattern, const Workload& workload,
                          CepJobOptions options = {}) {
  RunOutcome outcome;
  auto compiled = BuildCepJob(pattern, workload.MakeSourceFactory(), options);
  if (!compiled.ok()) {
    outcome.result.ok = false;
    outcome.result.error = compiled.status().ToString();
    return outcome;
  }
  outcome.result = RunJob(&compiled->graph, compiled->sink);
  outcome.raw_emissions = compiled->sink->count();
  outcome.match_set = MatchSet(compiled->sink->tuples());
  return outcome;
}

/// Ground-truth matches from the SEA formal semantics.
inline std::vector<std::string> OracleMatchSet(const Pattern& pattern,
                                               const Workload& workload) {
  sea::WindowedEvaluation eval =
      sea::EvaluateWithWindows(pattern, workload.MergedEvents());
  return MatchSet(eval.matches);
}

}  // namespace cep2asp::test

#endif  // CEP2ASP_TESTS_TEST_UTIL_H_
