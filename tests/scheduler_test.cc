#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "analysis/schedule_rules.h"
#include "asp/stateless.h"
#include "runtime/channel.h"
#include "runtime/job_graph.h"
#include "runtime/rate_limited_source.h"
#include "runtime/sink.h"
#include "runtime/slot_aligner.h"
#include "runtime/task_scheduler.h"
#include "runtime/threaded_executor.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;

std::vector<SimpleEvent> MakeEvents(EventTypeId type, int count,
                                    Timestamp step = 1000) {
  std::vector<SimpleEvent> events;
  for (int i = 0; i < count; ++i) {
    events.push_back(Ev(type, i, static_cast<Timestamp>(i) * step,
                        static_cast<double>(i)));
  }
  return events;
}

// --- WorkStealingDeque ------------------------------------------------------

class NamedTask : public Task {
 public:
  explicit NamedTask(std::string name) : name_(std::move(name)) {}
  std::string label() const override { return name_; }
  Quantum RunQuantum() override {
    Quantum q;
    q.outcome = Quantum::Outcome::kFinished;
    return q;
  }

 private:
  std::string name_;
};

TEST(WorkStealingDequeTest, OwnerPopsLifoThiefStealsFifo) {
  NamedTask a("a"), b("b"), c("c");
  WorkStealingDeque deque;
  EXPECT_TRUE(deque.EmptyHint());
  deque.PushBottom(&a);
  deque.PushBottom(&b);
  deque.PushBottom(&c);
  EXPECT_FALSE(deque.EmptyHint());
  // The owner pops its own freshest task (hot cache) ...
  EXPECT_EQ(deque.PopBottom(), &c);
  // ... while a thief takes the oldest, most overdue one.
  EXPECT_EQ(deque.StealTop(), &a);
  EXPECT_EQ(deque.PopBottom(), &b);
  EXPECT_EQ(deque.PopBottom(), nullptr);
  EXPECT_EQ(deque.StealTop(), nullptr);
  EXPECT_TRUE(deque.EmptyHint());
}

// --- TaskScheduler: credit park/unpark --------------------------------------

/// Pushes `total` data messages followed by one end marker through a
/// channel with TryPushBatch, parking on kCredit whenever the channel is
/// full — the cooperative producer protocol in miniature. Optionally idles
/// for a few quanta first so the consumer demonstrably parks on input.
class PushTask : public Task {
 public:
  PushTask(Channel* out, int total, size_t batch_size, int idle_quanta = 0)
      : out_(out),
        total_(total),
        batch_size_(batch_size),
        idle_quanta_(idle_quanta) {}

  std::string label() const override { return "push"; }

  Quantum RunQuantum() override {
    Quantum q;
    if (idle_quanta_ > 0) {
      --idle_quanta_;
      q.outcome = Quantum::Outcome::kYielded;
      return q;
    }
    while (q.batches < 4) {
      if (pending_.empty()) {
        if (sent_ >= total_ && end_sent_) {
          q.outcome = Quantum::Outcome::kFinished;
          return q;
        }
        while (sent_ < total_ && pending_.size() < batch_size_) {
          pending_.push_back(
              Message::Data(0, Tuple(Ev(0, sent_, sent_ * 1000))));
          ++sent_;
        }
        if (sent_ >= total_ && !end_sent_) {
          pending_.push_back(
              Message::Control(MessageKind::kEnd, 0, kMaxTimestamp));
          end_sent_ = true;
        }
      }
      const TryPush result = out_->TryPushBatch(&pending_, first_attempt_);
      if (result == TryPush::kBlocked) {
        first_attempt_ = false;
        q.outcome = Quantum::Outcome::kWaiting;
        q.wait_kind = WakeKind::kCredit;
        return q;
      }
      first_attempt_ = true;
      ++q.batches;
      if (result == TryPush::kClosed) {
        q.outcome = Quantum::Outcome::kFinished;
        return q;
      }
    }
    q.outcome = Quantum::Outcome::kYielded;
    return q;
  }

 private:
  Channel* out_;
  const int total_;
  const size_t batch_size_;
  int idle_quanta_;
  int sent_ = 0;
  bool end_sent_ = false;
  bool first_attempt_ = true;
  MessageBatch pending_;
};

/// Drains a channel with TryPopBatch, parking on kInput when it runs
/// empty, finishing on the end marker — the cooperative consumer protocol
/// in miniature.
class PopTask : public Task {
 public:
  explicit PopTask(Channel* in) : in_(in) {}

  std::string label() const override { return "pop"; }

  Quantum RunQuantum() override {
    Quantum q;
    while (q.batches < 4) {
      bool eos = false;
      const size_t popped = in_->TryPopBatch(&scratch_, 8, &eos);
      if (popped == 0) {
        if (eos) {
          q.outcome = Quantum::Outcome::kFinished;
          return q;
        }
        q.outcome = Quantum::Outcome::kWaiting;
        q.wait_kind = WakeKind::kInput;
        return q;
      }
      ++q.batches;
      for (const Message& msg : scratch_) {
        if (msg.kind == MessageKind::kEnd) {
          q.outcome = Quantum::Outcome::kFinished;
          return q;
        }
        received_ids.push_back(msg.tuple.event(0).id);
      }
    }
    q.outcome = Quantum::Outcome::kYielded;
    return q;
  }

  std::vector<int64_t> received_ids;

 private:
  Channel* in_;
  MessageBatch scratch_;
};

/// Wires a channel's readiness hooks to the scheduler the way the
/// executor does: a push wakes the consumer, a freed slot credits the
/// producer.
void WireHooks(Channel* channel, TaskScheduler* scheduler, Task* producer,
               Task* consumer) {
  channel->SetReadinessHooks(
      [scheduler, consumer] { scheduler->Wake(consumer, WakeKind::kInput); },
      [scheduler, producer] { scheduler->Wake(producer, WakeKind::kCredit); });
}

TEST(TaskSchedulerTest, CreditParkUnparkResumesProducerExactlyOnce) {
  // Channel capacity far below the message count forces the producer to
  // park on credits repeatedly; every park must be matched by exactly one
  // unpark or the run either deadlocks (lost wake) or double-enqueues.
  for (const bool spsc : {false, true}) {
    std::unique_ptr<Channel> channel =
        MakeChannel(/*num_producers=*/1, /*capacity_messages=*/8, spsc);
    PushTask producer(channel.get(), /*total=*/500, /*batch_size=*/16);
    PopTask consumer(channel.get());
    TaskScheduler scheduler(2);
    WireHooks(channel.get(), &scheduler, &producer, &consumer);
    scheduler.Run({&producer, &consumer});

    ASSERT_EQ(consumer.received_ids.size(), 500u) << "spsc=" << spsc;
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(consumer.received_ids[i], i) << "spsc=" << spsc;
    }
    const SchedulerStats stats = scheduler.ConsumeStats(4);
    EXPECT_GT(stats.total_parks(), 0) << "spsc=" << spsc;
    EXPECT_EQ(stats.total_parks(), stats.total_unparks()) << "spsc=" << spsc;
  }
}

TEST(TaskSchedulerTest, ParkedConsumerShutsDownCleanlyAtEndOfStream) {
  // The producer idles long enough for the consumer to drain nothing and
  // park on input; the end marker must wake it and the scheduler must
  // retire both tasks without leaking a parked task.
  std::unique_ptr<Channel> channel =
      MakeChannel(1, 64, /*enable_spsc=*/true);
  PushTask producer(channel.get(), /*total=*/10, /*batch_size=*/4,
                    /*idle_quanta=*/50);
  PopTask consumer(channel.get());
  TaskScheduler scheduler(2);
  WireHooks(channel.get(), &scheduler, &producer, &consumer);
  scheduler.Run({&producer, &consumer});

  EXPECT_EQ(consumer.received_ids.size(), 10u);
  const SchedulerStats stats = scheduler.ConsumeStats(4);
  EXPECT_EQ(stats.total_parks(), stats.total_unparks());
}

// --- SlotAligner ------------------------------------------------------------

TEST(SlotAlignerTest, MinAlignsWatermarksAndCountsEnds) {
  SlotAligner aligner(2);
  Timestamp aligned = kMinTimestamp;
  // One slot advancing alone never advances the minimum.
  EXPECT_FALSE(aligner.OnWatermark(0, 100, &aligned));
  // The lagging slot catching up advances the alignment to the minimum.
  EXPECT_TRUE(aligner.OnWatermark(1, 50, &aligned));
  EXPECT_EQ(aligned, 50);
  EXPECT_TRUE(aligner.OnWatermark(1, 200, &aligned));
  EXPECT_EQ(aligned, 100);
  // A stale watermark (out-of-order duplicate) changes nothing.
  EXPECT_FALSE(aligner.OnWatermark(0, 90, &aligned));

  EXPECT_FALSE(aligner.OnEnd());
  EXPECT_FALSE(aligner.done());
  EXPECT_TRUE(aligner.OnEnd());
  EXPECT_TRUE(aligner.done());
}

// --- ThreadedExecutor on the task scheduler ---------------------------------

TEST(ThreadedExecutorTest, SchedulerStatsSurfacedInResult) {
  auto build = [](CollectSink** sink_out) {
    auto graph = std::make_unique<JobGraph>();
    NodeId src = graph->AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(0, 2000)));
    NodeId filter = graph->AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value >= 100; }));
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    *sink_out = sink_op.get();
    graph->AddOperatorAfter(filter, std::move(sink_op));
    return graph;
  };

  CollectSink* sink = nullptr;
  auto graph = build(&sink);
  ThreadedExecutorOptions options;
  options.worker_threads = 2;
  ThreadedExecutor executor(graph.get(), options);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 1900);

  EXPECT_TRUE(result.scheduler.used);
  EXPECT_EQ(result.scheduler.worker_threads, 2);
  ASSERT_EQ(result.scheduler.workers.size(), 2u);
  EXPECT_GE(result.scheduler.num_tasks, 2);  // source + chain subtask
  EXPECT_GT(result.scheduler.total_tasks_run(), 0);
  EXPECT_GT(result.scheduler.total_batches(), 0);
  EXPECT_EQ(result.scheduler.total_parks(), result.scheduler.total_unparks());
  EXPECT_GT(result.scheduler.quantum_utilization(), 0.0);
  EXPECT_LE(result.scheduler.quantum_utilization(), 1.0);
  EXPECT_NE(result.scheduler.ToString().find("workers=2"), std::string::npos);

  // The legacy path reports itself as such.
  CollectSink* legacy_sink = nullptr;
  auto legacy_graph = build(&legacy_sink);
  ThreadedExecutorOptions legacy_options;
  legacy_options.use_task_scheduler = false;
  ThreadedExecutor legacy(legacy_graph.get(), legacy_options);
  ExecutionResult legacy_result = legacy.Run(legacy_sink);
  ASSERT_TRUE(legacy_result.ok) << legacy_result.error;
  EXPECT_EQ(legacy_result.matches_emitted, 1900);
  EXPECT_FALSE(legacy_result.scheduler.used);
}

TEST(ThreadedExecutorTest, RateLimitedSourceDoesNotStarveCoScheduledTasks) {
  // One worker, two pipelines: a paced source (parks on the scheduler
  // timer between tuples) union-merged with a large eager source. Under
  // the old sleep-in-Next behavior the single worker would spend the
  // pacing gaps blocked; cooperative pacing must instead run the eager
  // pipeline during the gaps and still deliver everything.
  JobGraph graph;
  NodeId slow = graph.AddSource(std::make_unique<RateLimitedSource>(
      std::make_unique<VectorSource>("slow", MakeEvents(0, 40)), 2000.0));
  NodeId fast = graph.AddSource(
      std::make_unique<VectorSource>("fast", MakeEvents(1, 5000)));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(slow, u, 0).ok());
  ASSERT_TRUE(graph.Connect(fast, u, 1).ok());
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(u, std::move(sink_op));

  ThreadedExecutorOptions options;
  options.worker_threads = 1;
  ThreadedExecutor executor(&graph, options);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 5040);
  // The pacing ran through the scheduler timer, not a blocking sleep.
  EXPECT_GT(result.scheduler.timer_parks, 0);
  EXPECT_EQ(result.scheduler.total_parks(), result.scheduler.total_unparks());
}

TEST(ThreadedExecutorTest, OversubscribedParallelismCompletesOnOneWorker) {
  // More tasks than workers: P=4 hash stage + source + sink chains all
  // multiplex onto a single worker thread. Completion proves parking and
  // credits compose (no worker ever blocks on a full or empty channel).
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 2000)));
  NodeId keyed = graph.AddOperatorAfter(
      src, MapOperator::KeyByAttribute(0, Attribute::kId));
  NodeId mapped = graph.AddOperator(
      std::make_unique<MapOperator>([](Tuple t) { return t; }, "identity"));
  ASSERT_TRUE(graph.Connect(keyed, mapped, 0, PartitionMode::kHash).ok());
  ASSERT_TRUE(graph.SetParallelism(mapped, 4).ok());
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(mapped, std::move(sink_op));

  ThreadedExecutorOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 64;  // small channels exercise credit parking
  ThreadedExecutor executor(&graph, options);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 2000);
  EXPECT_TRUE(result.scheduler.used);
  EXPECT_GE(result.scheduler.num_tasks, 6);  // src + keyed-chain + 4 + sink
}

// --- Schedule lint (I316) ---------------------------------------------------

JobGraph MakeParallelGraph(int parallelism) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 10)));
  NodeId keyed = graph.AddOperatorAfter(
      src, MapOperator::KeyByAttribute(0, Attribute::kId));
  NodeId mapped = graph.AddOperator(
      std::make_unique<MapOperator>([](Tuple t) { return t; }, "identity"));
  EXPECT_TRUE(graph.Connect(keyed, mapped, 0, PartitionMode::kHash).ok());
  EXPECT_TRUE(graph.SetParallelism(mapped, parallelism).ok());
  graph.AddOperatorAfter(mapped, std::make_unique<CollectSink>(false));
  return graph;
}

TEST(ScheduleRulesTest, LegacyOversubscriptionReportsI316) {
  JobGraph graph = MakeParallelGraph(4);
  // Legacy threads: 1 source + keyed chain + 4 mapped + sink chain = 7 on
  // 2 hardware threads -> oversubscribed.
  DiagnosticReport legacy = AnalyzeSchedule(graph, /*chaining_enabled=*/true,
                                            /*use_task_scheduler=*/false,
                                            /*hardware_threads=*/2);
  EXPECT_TRUE(legacy.Has(DiagnosticCode::kGraphScheduleOversubscribed));
  EXPECT_EQ(legacy.error_count(), 0);
  EXPECT_EQ(legacy.info_count(), 1);

  // The task scheduler multiplexes: the finding never fires.
  DiagnosticReport pooled = AnalyzeSchedule(graph, true,
                                            /*use_task_scheduler=*/true,
                                            /*hardware_threads=*/2);
  EXPECT_TRUE(pooled.empty());

  // Enough cores for every legacy thread: nothing to report either.
  DiagnosticReport roomy = AnalyzeSchedule(graph, true,
                                           /*use_task_scheduler=*/false,
                                           /*hardware_threads=*/16);
  EXPECT_TRUE(roomy.empty());
}

TEST(ScheduleRulesTest, ScheduleToStringListsEveryTask) {
  JobGraph graph = MakeParallelGraph(2);
  const std::string layout =
      ScheduleToString(graph, /*chaining_enabled=*/true, /*worker_threads=*/2);
  EXPECT_NE(layout.find("source s"), std::string::npos);
  EXPECT_NE(layout.find("subtask 0"), std::string::npos);
  EXPECT_NE(layout.find("subtask 1"), std::string::npos);
  EXPECT_NE(layout.find("worker pool: 2"), std::string::npos);
}

}  // namespace
}  // namespace cep2asp
