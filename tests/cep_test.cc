#include <gtest/gtest.h>

#include "cep/cep_operator.h"
#include "cep/nfa.h"
#include "runtime/executor.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;
using Events = std::vector<SimpleEvent>;

constexpr Timestamp kMin = kMillisPerMinute;

class CepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = EventTypeRegistry::Global()->RegisterOrGet("CepA");
    b_ = EventTypeRegistry::Global()->RegisterOrGet("CepB");
    c_ = EventTypeRegistry::Global()->RegisterOrGet("CepC");
  }

  Pattern SeqAB(Timestamp w = 4 * kMin) {
    return PatternBuilder()
        .Seq(PatternBuilder::Atom(a_, "e1"), PatternBuilder::Atom(b_, "e2"))
        .Within(w)
        .Build()
        .ValueOrDie();
  }

  /// Runs events (one unioned ts-ordered stream) through a CepOperator.
  std::vector<Tuple> Run(const Pattern& pattern, Events events,
                         CepOperatorOptions options = {}) {
    auto op = CepOperator::FromPattern(pattern, options);
    CEP2ASP_CHECK(op.ok()) << op.status().ToString();
    JobGraph graph;
    NodeId src = graph.AddSource(
        std::make_unique<VectorSource>("s", std::move(events)));
    NodeId cep = graph.AddOperatorAfter(src, std::move(op).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>();
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    ExecutorOptions exec;
    exec.watermark_interval = 1;
    ExecutionResult result = RunJob(&graph, sink, exec);
    CEP2ASP_CHECK(result.ok) << result.error;
    return sink->tuples();
  }

  EventTypeId a_ = 0, b_ = 0, c_ = 0;
};

// --- NFA compilation ----------------------------------------------------------

TEST_F(CepTest, CompileSeqProducesLinearStages) {
  NfaSpec spec = CompileNfa(SeqAB()).ValueOrDie();
  ASSERT_EQ(spec.stages.size(), 2u);
  EXPECT_EQ(spec.stages[0].type, a_);
  EXPECT_EQ(spec.stages[1].type, b_);
  EXPECT_TRUE(spec.negations.empty());
}

TEST_F(CepTest, CompileIterRepeatsStages) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Predicate(),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  NfaSpec spec = CompileNfa(p).ValueOrDie();
  ASSERT_EQ(spec.stages.size(), 3u);
  EXPECT_FALSE(spec.stages[0].consecutive.has_value());
  EXPECT_TRUE(spec.stages[1].consecutive.has_value());
  EXPECT_TRUE(spec.stages[2].consecutive.has_value());
}

TEST_F(CepTest, CompileNseqRecordsNegation) {
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  NfaSpec spec = CompileNfa(p).ValueOrDie();
  ASSERT_EQ(spec.stages.size(), 2u);
  ASSERT_EQ(spec.negations.size(), 1u);
  EXPECT_EQ(spec.negations[0].type, b_);
  EXPECT_EQ(spec.negations[0].after_position, 0);
}

TEST_F(CepTest, Table2UnsupportedOperators) {
  // FCEP supports SEQ/ITER/NSEQ but not AND/OR (paper Table 2).
  Pattern conj = PatternBuilder()
                     .And(PatternBuilder::Atom(a_, "e1"),
                          PatternBuilder::Atom(b_, "e2"))
                     .Within(4 * kMin)
                     .Build()
                     .ValueOrDie();
  EXPECT_TRUE(CompileNfa(conj).status().IsUnimplemented());
  Pattern disj = PatternBuilder()
                     .Or(PatternBuilder::Atom(a_, "e1"),
                         PatternBuilder::Atom(b_, "e2"))
                     .Within(4 * kMin)
                     .Build()
                     .ValueOrDie();
  EXPECT_TRUE(CompileNfa(disj).status().IsUnimplemented());
}

TEST_F(CepTest, StagePredicatesGroupedByMaxVar) {
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
                                              {1, Attribute::kValue}))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  NfaSpec spec = CompileNfa(p).ValueOrDie();
  EXPECT_TRUE(spec.stage_predicates[0].empty());
  EXPECT_EQ(spec.stage_predicates[1].size(), 1u);
}

// --- Basic detection -------------------------------------------------------------

TEST_F(CepTest, DetectsSequence) {
  auto out = Run(SeqAB(), {Ev(a_, 1, 0, 1), Ev(b_, 1, kMin, 2)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0].event(0).type, a_);
}

TEST_F(CepTest, WindowPredicatePrunes) {
  // Implicit windowing: B too late.
  auto out = Run(SeqAB(4 * kMin), {Ev(a_, 1, 0, 1), Ev(b_, 1, 4 * kMin, 2)});
  EXPECT_TRUE(out.empty());
  // Just inside.
  out = Run(SeqAB(4 * kMin), {Ev(a_, 1, 0, 1), Ev(b_, 1, 4 * kMin - 1, 2)});
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(CepTest, SkipTillAnyMatchBranches) {
  // a1 a2 b: under stam both (a1,b) and (a2,b) match.
  auto out = Run(
      SeqAB(), {Ev(a_, 1, 0, 1), Ev(a_, 1, kMin, 2), Ev(b_, 1, 2 * kMin, 3)});
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(CepTest, SkipTillAnyMatchCombinatorial) {
  // 5 As followed by two Bs: 5 matches per B.
  Events events;
  for (int i = 0; i < 5; ++i) events.push_back(Ev(a_, 1, i * 1000, i));
  events.push_back(Ev(b_, 1, 10000, 0));
  events.push_back(Ev(b_, 1, 11000, 0));
  auto out = Run(SeqAB(), events);
  EXPECT_EQ(out.size(), 10u);
}

TEST_F(CepTest, SkipTillNextMatchAdvancesOnce) {
  CepOperatorOptions options;
  options.policy = SelectionPolicy::kSkipTillNextMatch;
  // a1 a2 b1 b2: each A-run advances on the next B only: two matches,
  // none with the later b2.
  Events events = {Ev(a_, 1, 0, 1), Ev(a_, 1, kMin, 2), Ev(b_, 1, 2 * kMin, 3),
                   Ev(b_, 1, 3 * kMin, 4)};
  auto out = Run(SeqAB(), events, options);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(CepTest, StrictContiguityKillsOnGap) {
  CepOperatorOptions options;
  options.policy = SelectionPolicy::kStrictContiguity;
  // a c b: the C between kills the run under strict contiguity.
  Events gap = {Ev(a_, 1, 0, 1), Ev(c_, 1, kMin, 0), Ev(b_, 1, 2 * kMin, 2)};
  EXPECT_TRUE(Run(SeqAB(), gap, options).empty());
  // a b adjacent: match.
  Events adjacent = {Ev(a_, 1, 0, 1), Ev(b_, 1, kMin, 2)};
  EXPECT_EQ(Run(SeqAB(), adjacent, options).size(), 1u);
}

TEST_F(CepTest, PoliciesFormSupersetHierarchy) {
  // stam results are supersets of stnm, which contain sc (§3.1.4).
  Events events = {Ev(a_, 1, 0, 1), Ev(c_, 1, 500, 0), Ev(a_, 1, kMin, 2),
                   Ev(b_, 1, 2 * kMin, 3), Ev(b_, 1, 3 * kMin, 4)};
  auto stam = test::MatchSet(Run(SeqAB(), events));
  CepOperatorOptions stnm_opt;
  stnm_opt.policy = SelectionPolicy::kSkipTillNextMatch;
  auto stnm = test::MatchSet(Run(SeqAB(), events, stnm_opt));
  CepOperatorOptions sc_opt;
  sc_opt.policy = SelectionPolicy::kStrictContiguity;
  auto sc = test::MatchSet(Run(SeqAB(), events, sc_opt));
  auto subset = [](const std::vector<std::string>& small,
                   const std::vector<std::string>& big) {
    for (const auto& k : small) {
      if (std::find(big.begin(), big.end(), k) == big.end()) return false;
    }
    return true;
  };
  EXPECT_TRUE(subset(stnm, stam));
  EXPECT_TRUE(subset(sc, stnm));
}

// --- Iteration ------------------------------------------------------------------

TEST_F(CepTest, IterAllCombinations) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 2))
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  Events events = {Ev(a_, 1, 0, 0), Ev(a_, 1, kMin, 0), Ev(a_, 1, 2 * kMin, 0)};
  // times(2).allowCombinations: C(3,2) = 3 matches.
  EXPECT_EQ(Run(p, events).size(), 3u);
}

TEST_F(CepTest, IterConsecutiveConstraint) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Predicate(),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  Events events = {Ev(a_, 1, 0, 1), Ev(a_, 1, kMin, 3), Ev(a_, 1, 2 * kMin, 2),
                   Ev(a_, 1, 3 * kMin, 4)};
  // Increasing chains of length 3: (1,3,4), (1,2,4).
  EXPECT_EQ(Run(p, events).size(), 2u);
}

// --- Negated sequence ---------------------------------------------------------------

TEST_F(CepTest, NseqDetectsAbsence) {
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  EXPECT_EQ(Run(p, {Ev(a_, 1, 0, 0), Ev(c_, 1, kMin, 0)}).size(), 1u);
  Events blocked = {Ev(a_, 1, 0, 0), Ev(b_, 1, 30000, 0), Ev(c_, 1, kMin, 0)};
  EXPECT_TRUE(Run(p, blocked).empty());
}

TEST_F(CepTest, NseqMatchContainsOnlyPositiveEvents) {
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  auto out = Run(p, {Ev(a_, 1, 0, 0), Ev(c_, 1, kMin, 0)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0].event(0).type, a_);
  EXPECT_EQ(out[0].event(1).type, c_);
}

// --- Keyed operation -------------------------------------------------------------------

TEST_F(CepTest, KeyedRunsIsolatePartitions) {
  CepOperatorOptions options;
  options.keyed = true;
  // a(id=1) then b(id=2): no match when keyed by id.
  EXPECT_TRUE(Run(SeqAB(), {Ev(a_, 1, 0, 1), Ev(b_, 2, kMin, 2)}, options)
                  .empty());
  EXPECT_EQ(Run(SeqAB(), {Ev(a_, 1, 0, 1), Ev(b_, 1, kMin, 2)}, options).size(),
            1u);
}

// --- State growth (the paper's pathology) -------------------------------------------------

TEST_F(CepTest, LiveRunsGrowWithSelectivity) {
  // Many As with no B: every A opens a partial match kept for the window
  // lifetime (the memory pathology of the stateful model, §5.2.4).
  Events events;
  for (int i = 0; i < 100; ++i) events.push_back(Ev(a_, 1, i * 100, 0));
  auto op = CepOperator::FromPattern(SeqAB(100 * kMin)).ValueOrDie();
  CepOperator* cep = op.get();
  JobGraph graph;
  NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
  NodeId cep_id = graph.AddOperatorAfter(src, std::move(op));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(cep_id, std::move(sink_op));
  ExecutorOptions exec;
  exec.watermark_interval = 1;
  ExecutionResult result = RunJob(&graph, sink, exec);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(cep->peak_runs(), 100);
}

TEST_F(CepTest, WindowExpiryPrunesRuns) {
  Events events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(Ev(a_, 1, static_cast<Timestamp>(i) * 10 * kMin, 0));
  }
  auto op = CepOperator::FromPattern(SeqAB(4 * kMin)).ValueOrDie();
  CepOperator* cep = op.get();
  JobGraph graph;
  NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
  NodeId cep_id = graph.AddOperatorAfter(src, std::move(op));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(cep_id, std::move(sink_op));
  ExecutorOptions exec;
  exec.watermark_interval = 1;
  ExecutionResult result = RunJob(&graph, sink, exec);
  ASSERT_TRUE(result.ok);
  // Events 10 minutes apart with W = 4: each new A expires the previous.
  EXPECT_LE(cep->peak_runs(), 2);
}

}  // namespace
}  // namespace cep2asp
