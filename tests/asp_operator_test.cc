#include <gtest/gtest.h>

#include "asp/dedup.h"
#include "asp/interval_join.h"
#include "asp/nseq_mark.h"
#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "asp/window.h"
#include "asp/window_aggregate.h"
#include "asp/window_apply.h"
#include "runtime/executor.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;

constexpr Timestamp kMinute = kMillisPerMinute;

/// A binary-join run that keeps the graph (and thus the operator) alive so
/// tests can inspect operator state after execution.
template <typename JoinOp>
struct JoinRun {
  std::unique_ptr<JobGraph> graph;
  JoinOp* op = nullptr;
  std::vector<Tuple> out;
};

template <typename JoinOp>
JoinRun<JoinOp> RunBinaryKeepGraph(std::unique_ptr<JoinOp> join,
                                   std::vector<SimpleEvent> left,
                                   std::vector<SimpleEvent> right) {
  JoinRun<JoinOp> run;
  run.graph = std::make_unique<JobGraph>();
  JobGraph& graph = *run.graph;
  NodeId l = graph.AddSource(std::make_unique<VectorSource>("l", std::move(left)));
  NodeId r = graph.AddSource(std::make_unique<VectorSource>("r", std::move(right)));
  run.op = join.get();
  NodeId j = graph.AddOperator(std::move(join));
  CEP2ASP_CHECK_OK(graph.Connect(l, j, 0));
  CEP2ASP_CHECK_OK(graph.Connect(r, j, 1));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(j, std::move(sink_op));
  ExecutorOptions options;
  options.watermark_interval = 1;  // aggressive watermarks in unit tests
  ExecutionResult result = RunJob(&graph, sink, options);
  CEP2ASP_CHECK(result.ok) << result.error;
  run.out = sink->tuples();
  return run;
}

/// Runs left/right streams through a binary join operator and returns the
/// collected outputs.
template <typename JoinOp>
std::vector<Tuple> RunBinary(std::unique_ptr<JoinOp> join,
                             std::vector<SimpleEvent> left,
                             std::vector<SimpleEvent> right) {
  return RunBinaryKeepGraph(std::move(join), std::move(left), std::move(right))
      .out;
}

std::vector<Tuple> RunUnary(std::unique_ptr<Operator> op,
                            std::vector<SimpleEvent> input) {
  JobGraph graph;
  NodeId s = graph.AddSource(std::make_unique<VectorSource>("s", std::move(input)));
  NodeId o = graph.AddOperatorAfter(s, std::move(op));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(o, std::move(sink_op));
  ExecutorOptions options;
  options.watermark_interval = 1;
  ExecutionResult result = RunJob(&graph, sink, options);
  CEP2ASP_CHECK(result.ok) << result.error;
  return sink->tuples();
}

Predicate SeqCondition() {
  Predicate p;
  p.Add(Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLt,
                             {1, Attribute::kTs}));
  return p;
}

// --- Window math -------------------------------------------------------------

TEST(WindowMathTest, FloorDivNegative) {
  EXPECT_EQ(FloorDiv(7, 3), 2);
  EXPECT_EQ(FloorDiv(-7, 3), -3);
  EXPECT_EQ(FloorDiv(-6, 3), -2);
  EXPECT_EQ(FloorDiv(0, 3), 0);
}

TEST(WindowMathTest, WindowAssignment) {
  SlidingWindowSpec spec{10, 2};  // windows [2k, 2k+10)
  EXPECT_EQ(spec.FirstWindow(0), -4);
  EXPECT_EQ(spec.LastWindow(0), 0);
  EXPECT_EQ(spec.FirstWindow(10), 1);  // [2,12) is first containing 10
  EXPECT_EQ(spec.LastWindow(10), 5);   // [10,20)
  // Every ts is in exactly size/slide windows.
  EXPECT_EQ(spec.LastWindow(7) - spec.FirstWindow(7) + 1, 5);
}

TEST(WindowMathTest, CanFireRespectsWatermark) {
  SlidingWindowSpec spec{10, 2};
  EXPECT_TRUE(spec.CanFire(0, 10));   // window [0,10) complete at wm=10
  EXPECT_FALSE(spec.CanFire(0, 9));
  EXPECT_FALSE(spec.CanFire(1, 11));  // [2,12) needs wm>=12
}

// --- Sliding window join -------------------------------------------------------

TEST(SlidingJoinTest, FindsOrderedPairWithinWindow) {
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 0 * kMinute, 1)},
                       {Ev(1, 1, 2 * kMinute, 2)});
  auto set = test::MatchSet(out);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_GE(out.size(), 1u);  // possibly duplicated across windows
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0].event_time(), 2 * kMinute);  // kMax redefinition
}

TEST(SlidingJoinTest, RejectsWrongOrder) {
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 3 * kMinute, 1)},
                       {Ev(1, 1, 1 * kMinute, 2)});
  EXPECT_TRUE(out.empty());
}

TEST(SlidingJoinTest, PairSpanningFullWindowNotJoined) {
  // Events exactly W apart never share a window of length W.
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 0, 1)},
                       {Ev(1, 1, 4 * kMinute, 2)});
  EXPECT_TRUE(out.empty());
}

TEST(SlidingJoinTest, PairAtWindowEdgeJoined) {
  // W-1 apart: detected thanks to the window starting at the first event
  // (Theorem 2 with slide <= event granularity).
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 1 * kMinute, 1)},
                       {Ev(1, 1, 4 * kMinute + kMinute - 1, 2)});
  EXPECT_FALSE(out.empty());
}

TEST(SlidingJoinTest, OverlappingWindowsDuplicate) {
  // A pair 1 minute apart inside a 4-minute window with 1-minute slide is
  // seen by multiple windows: raw emissions exceed distinct matches.
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 4 * kMinute, 1)},
                       {Ev(1, 1, 5 * kMinute, 2)});
  EXPECT_EQ(test::MatchSet(out).size(), 1u);
  EXPECT_GT(out.size(), 1u);
}

TEST(SlidingJoinTest, KeyIsolation) {
  // Tuples only join within the same key partition (Equi Join, O3).
  std::vector<SimpleEvent> left = {Ev(0, 1, 0, 1), Ev(0, 2, 0, 1)};
  std::vector<SimpleEvent> right = {Ev(1, 1, kMinute, 2), Ev(1, 2, kMinute, 2)};
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join), left, right);
  // Keys default to the event id: 1-1 and 2-2 join; 1-2 and 2-1 do not.
  auto set = test::MatchSet(out);
  EXPECT_EQ(set.size(), 2u);
}

TEST(SlidingJoinTest, StateEvicted) {
  std::vector<SimpleEvent> left, right;
  for (int i = 0; i < 200; ++i) {
    left.push_back(Ev(0, 1, i * kMinute, 1));
    right.push_back(Ev(1, 1, i * kMinute + 1, 2));
  }
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, SeqCondition(),
      TimestampMode::kMax);
  auto run = RunBinaryKeepGraph(std::move(join), left, right);
  // Explicit windowing discards processed tuples: final state is empty.
  EXPECT_EQ(run.op->StateBytes(), 0u);
}

TEST(SlidingJoinTest, CrossJoinWithoutCondition) {
  // Empty condition = Cartesian product within the window (AND mapping).
  auto join = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{4 * kMinute, kMinute}, Predicate(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 2 * kMinute, 1)},
                       {Ev(1, 1, 1 * kMinute, 2)});
  // Order does not matter for the conjunction.
  EXPECT_EQ(test::MatchSet(out).size(), 1u);
}

// --- Interval join ----------------------------------------------------------------

TEST(IntervalJoinTest, SequenceBoundsMatchOnlyLater) {
  auto join = std::make_unique<IntervalJoinOperator>(
      IntervalBounds::ForSequence(4 * kMinute), Predicate(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 2 * kMinute, 1)},
                       {Ev(1, 1, 1 * kMinute, 2), Ev(1, 1, 3 * kMinute, 3)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event(1).ts, 3 * kMinute);
}

TEST(IntervalJoinTest, ConjunctionBoundsSymmetric) {
  auto join = std::make_unique<IntervalJoinOperator>(
      IntervalBounds::ForConjunction(4 * kMinute), Predicate(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join),
                       {Ev(0, 1, 5 * kMinute, 1)},
                       {Ev(1, 1, 2 * kMinute, 2), Ev(1, 1, 8 * kMinute, 3)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(IntervalJoinTest, NoDuplicates) {
  // The same pair is emitted exactly once regardless of stream length
  // (content-based windows, §4.3.1).
  std::vector<SimpleEvent> left, right;
  for (int i = 0; i < 50; ++i) left.push_back(Ev(0, 1, i * kMinute, 1));
  for (int i = 0; i < 50; ++i) right.push_back(Ev(1, 1, i * kMinute + 1, 2));
  auto join = std::make_unique<IntervalJoinOperator>(
      IntervalBounds::ForSequence(4 * kMinute), Predicate(),
      TimestampMode::kMax);
  auto out = RunBinary(std::move(join), left, right);
  EXPECT_EQ(out.size(), test::MatchSet(out).size());
}

TEST(IntervalJoinTest, AgreesWithSlidingJoinAfterDedup) {
  std::vector<SimpleEvent> left, right;
  for (int i = 0; i < 40; ++i) left.push_back(Ev(0, 1, i * kMinute, i));
  for (int i = 0; i < 40; ++i) right.push_back(Ev(1, 1, i * kMinute + 30000, i));
  auto sliding = std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{5 * kMinute, 30000}, SeqCondition(),
      TimestampMode::kMax);
  auto interval = std::make_unique<IntervalJoinOperator>(
      IntervalBounds::ForSequence(5 * kMinute), SeqCondition(),
      TimestampMode::kMax);
  auto sliding_out = RunBinary(std::move(sliding), left, right);
  auto interval_out = RunBinary(std::move(interval), left, right);
  EXPECT_EQ(test::MatchSet(sliding_out), test::MatchSet(interval_out));
}

TEST(IntervalJoinTest, WindowsCreatedPerLeftEvent) {
  std::vector<SimpleEvent> left = {Ev(0, 1, 0, 1), Ev(0, 1, kMinute, 1)};
  std::vector<SimpleEvent> right;
  for (int i = 0; i < 100; ++i) right.push_back(Ev(1, 1, i * 1000, 2));
  auto join = std::make_unique<IntervalJoinOperator>(
      IntervalBounds::ForSequence(4 * kMinute), Predicate(),
      TimestampMode::kMax);
  auto run = RunBinaryKeepGraph(std::move(join), left, right);
  EXPECT_EQ(run.op->windows_created(), 2);
}

// --- Window aggregate --------------------------------------------------------------

TEST(WindowAggregateTest, CountPerWindow) {
  std::vector<SimpleEvent> input;
  for (int i = 0; i < 10; ++i) input.push_back(Ev(0, 1, i * kMinute, 1));
  auto agg = std::make_unique<WindowAggregateOperator>(
      SlidingWindowSpec{2 * kMinute, 2 * kMinute}, AggregateFn::kCount,
      Attribute::kValue);
  auto out = RunUnary(std::move(agg), input);
  // Tumbling 2-minute windows over 10 minute-spaced events: 5 windows of 2.
  ASSERT_EQ(out.size(), 5u);
  for (const Tuple& t : out) EXPECT_DOUBLE_EQ(t.event(0).value, 2.0);
}

TEST(WindowAggregateTest, MinCountGates) {
  std::vector<SimpleEvent> input;
  for (int i = 0; i < 4; ++i) input.push_back(Ev(0, 1, i * kMinute, 1));
  auto agg = std::make_unique<WindowAggregateOperator>(
      SlidingWindowSpec{2 * kMinute, 2 * kMinute}, AggregateFn::kCount,
      Attribute::kValue, /*min_count=*/3);
  auto out = RunUnary(std::move(agg), input);
  EXPECT_TRUE(out.empty());  // no window holds 3 events
}

TEST(WindowAggregateTest, AvgMinMaxSum) {
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 2), Ev(0, 1, kMinute, 6)};
  for (AggregateFn fn : {AggregateFn::kAvg, AggregateFn::kMin,
                         AggregateFn::kMax, AggregateFn::kSum}) {
    auto agg = std::make_unique<WindowAggregateOperator>(
        SlidingWindowSpec{2 * kMinute, 2 * kMinute}, fn, Attribute::kValue);
    auto out = RunUnary(std::move(agg), input);
    ASSERT_EQ(out.size(), 1u);
    double expected = fn == AggregateFn::kAvg   ? 4.0
                      : fn == AggregateFn::kMin ? 2.0
                      : fn == AggregateFn::kMax ? 6.0
                                                : 8.0;
    EXPECT_DOUBLE_EQ(out[0].event(0).value, expected);
  }
}

TEST(WindowAggregateTest, EmptyWindowsDoNotFire) {
  // Two events far apart: intermediate windows are empty and silent
  // (which is why O2 cannot express Kleene*, §4.3.2).
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 1), Ev(0, 1, 60 * kMinute, 1)};
  auto agg = std::make_unique<WindowAggregateOperator>(
      SlidingWindowSpec{kMinute, kMinute}, AggregateFn::kCount,
      Attribute::kValue);
  auto out = RunUnary(std::move(agg), input);
  EXPECT_EQ(out.size(), 2u);
}

TEST(WindowAggregateTest, PerKeyAggregation) {
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 1), Ev(0, 2, 1, 1),
                                    Ev(0, 1, 2, 1)};
  auto agg = std::make_unique<WindowAggregateOperator>(
      SlidingWindowSpec{kMinute, kMinute}, AggregateFn::kCount,
      Attribute::kValue);
  auto out = RunUnary(std::move(agg), input);
  ASSERT_EQ(out.size(), 2u);  // one aggregate per key
  double total = out[0].event(0).value + out[1].event(0).value;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

// --- Window apply -------------------------------------------------------------------

TEST(WindowApplyTest, SeesSortedContentAndBounds) {
  std::vector<SimpleEvent> input = {Ev(0, 1, 30000, 3), Ev(0, 1, 10000, 1),
                                    Ev(0, 1, 50000, 5)};
  // Input must be ts-ordered per source; scramble via two sources instead.
  std::sort(input.begin(), input.end(),
            [](const SimpleEvent& a, const SimpleEvent& b) { return a.ts < b.ts; });
  bool checked = false;
  auto apply = std::make_unique<WindowApplyOperator>(
      SlidingWindowSpec{kMinute, kMinute},
      [&checked](int64_t, Timestamp begin, Timestamp end,
                 const std::vector<SimpleEvent>& events, Collector* out) {
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, kMinute);
        ASSERT_EQ(events.size(), 3u);
        EXPECT_LT(events[0].ts, events[1].ts);
        EXPECT_LT(events[1].ts, events[2].ts);
        checked = true;
        out->Emit(Tuple(events.back()));
      });
  auto out = RunUnary(std::move(apply), input);
  EXPECT_TRUE(checked);
  EXPECT_EQ(out.size(), 1u);
}

// --- NseqMark -----------------------------------------------------------------------

TEST(NseqMarkTest, MarksNextNegatedOccurrence) {
  // T1 at t=0; T2 at t=2min: ats = 2min.
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 1), Ev(1, 1, 2 * kMinute, 2)};
  auto mark = std::make_unique<NseqMarkOperator>(0, 1, 4 * kMinute);
  auto out = RunUnary(std::move(mark), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event(0).type, 0);
  EXPECT_EQ(out[0].event(0).aux_ts, 2 * kMinute);
}

TEST(NseqMarkTest, NoNegatedOccurrenceYieldsWindowEnd) {
  std::vector<SimpleEvent> input = {Ev(0, 1, kMinute, 1)};
  auto mark = std::make_unique<NseqMarkOperator>(0, 1, 4 * kMinute);
  auto out = RunUnary(std::move(mark), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event(0).aux_ts, 5 * kMinute);
}

TEST(NseqMarkTest, NegatedOutsideWindowIgnored) {
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 1), Ev(1, 1, 5 * kMinute, 2)};
  auto mark = std::make_unique<NseqMarkOperator>(0, 1, 4 * kMinute);
  auto out = RunUnary(std::move(mark), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event(0).aux_ts, 4 * kMinute);  // e1.ts + W
}

TEST(NseqMarkTest, PicksFirstOfSeveral) {
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 1), Ev(1, 1, kMinute, 2),
                                    Ev(1, 1, 2 * kMinute, 3)};
  auto mark = std::make_unique<NseqMarkOperator>(0, 1, 4 * kMinute);
  auto out = RunUnary(std::move(mark), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event(0).aux_ts, kMinute);
}

TEST(NseqMarkTest, SimultaneousNegatedNotAfter) {
  // T2 at exactly e1.ts is not strictly after e1.
  std::vector<SimpleEvent> input = {Ev(1, 1, kMinute, 2), Ev(0, 1, kMinute, 1)};
  auto mark = std::make_unique<NseqMarkOperator>(0, 1, 4 * kMinute);
  auto out = RunUnary(std::move(mark), input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].event(0).aux_ts, 5 * kMinute);
}

// --- Dedup ---------------------------------------------------------------------------

TEST(DedupTest, RemovesDuplicateMatches) {
  std::vector<SimpleEvent> input = {Ev(0, 1, 0, 1), Ev(0, 1, 0, 1),
                                    Ev(0, 1, kMinute, 1)};
  auto dedup = std::make_unique<DedupOperator>(4 * kMinute);
  auto out = RunUnary(std::move(dedup), input);
  EXPECT_EQ(out.size(), 2u);
}

// --- Stateless helpers -----------------------------------------------------------------

TEST(StatelessTest, AssignConstantKey) {
  auto map = MapOperator::AssignConstantKey(99);
  auto out = RunUnary(std::move(map), {Ev(0, 5, 0, 1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key(), 99);
}

TEST(StatelessTest, KeyByAttribute) {
  SimpleEvent e = Ev(0, 5, 0, 42.0);
  auto map = MapOperator::KeyByAttribute(0, Attribute::kValue);
  auto out = RunUnary(std::move(map), {e});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key(), 42);
}

TEST(StatelessTest, FilterFromPredicate) {
  Predicate p;
  p.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGt, 5.0));
  auto filter = FilterOperator::FromPredicate(p);
  auto out = RunUnary(std::move(filter), {Ev(0, 1, 0, 4), Ev(0, 1, 1, 6)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].event(0).value, 6.0);
}

}  // namespace
}  // namespace cep2asp
