// Execution-invariance properties: match sets must not depend on *how*
// the job is driven — watermark cadence, state-sampling cadence, queue
// capacities, or executor choice are operational knobs, not semantics.

#include <gtest/gtest.h>

#include "runtime/threaded_executor.h"
#include "tests/test_util.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

class InvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = EventTypeRegistry::Global()->RegisterOrGet("InvA");
    b_ = EventTypeRegistry::Global()->RegisterOrGet("InvB");
    c_ = EventTypeRegistry::Global()->RegisterOrGet("InvC");

    for (EventTypeId type : {a_, b_, c_}) {
      StreamSpec spec;
      spec.type = type;
      spec.num_sensors = 2;
      spec.events_per_sensor = 60;
      spec.period = kMin;
      spec.seed = 1234 + type;
      // Aligned sampling so the default one-minute slide is lossless
      // (Theorem 2); with staggered sensors the implicit-windowing engines
      // would legitimately find edge matches the 1-minute discretization
      // misses.
      spec.align_to_period = true;
      workload_.AddStream(spec);
    }
  }

  Pattern Nseq() {
    Predicate filter;
    filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 45));
    return PatternBuilder()
        .Nseq({a_, "e1", filter}, {b_, "e2", filter}, {c_, "e3", filter})
        .Within(6 * kMin)
        .Build()
        .ValueOrDie();
  }

  Pattern Seq3() {
    Predicate filter;
    filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 45));
    return PatternBuilder()
        .Seq(PatternBuilder::Atom(a_, "e1", filter),
             PatternBuilder::Atom(b_, "e2", filter),
             PatternBuilder::Atom(c_, "e3", filter))
        .Within(6 * kMin)
        .Build()
        .ValueOrDie();
  }

  /// SEQ with Equi-Join id predicates: O3 extracts a by-attribute key plan,
  /// making the join stages parallelizable.
  Pattern Seq3Keyed() {
    Predicate filter;
    filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 60));
    return PatternBuilder()
        .Seq(PatternBuilder::Atom(a_, "e1", filter),
             PatternBuilder::Atom(b_, "e2", filter),
             PatternBuilder::Atom(c_, "e3", filter))
        .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                    {1, Attribute::kId}))
        .Where(Comparison::AttrAttr({1, Attribute::kId}, CmpOp::kEq,
                                    {2, Attribute::kId}))
        .Within(6 * kMin)
        .Build()
        .ValueOrDie();
  }

  Pattern Iter3Keyed() {
    Predicate filter;
    filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 60));
    PatternBuilder builder;
    builder.Root(PatternBuilder::Iter(a_, "e", 3, filter));
    for (int i = 0; i + 1 < 3; ++i) {
      builder.Where(Comparison::AttrAttr({i, Attribute::kId}, CmpOp::kEq,
                                         {i + 1, Attribute::kId}));
    }
    return builder.Within(6 * kMin).Build().ValueOrDie();
  }

  Pattern NseqKeyed() {
    Predicate filter;
    filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 60));
    return PatternBuilder()
        .Nseq({a_, "e1", filter}, {b_, "e2", filter}, {c_, "e3", filter})
        .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                    {1, Attribute::kId}))
        .Within(6 * kMin)
        .Build()
        .ValueOrDie();
  }

  std::vector<std::string> RunWithExecutorOptions(const Pattern& pattern,
                                                  const ExecutorOptions& options,
                                                  TranslatorOptions topt = {}) {
    auto compiled =
        TranslatePattern(pattern, topt, workload_.MakeSourceFactory());
    CEP2ASP_CHECK(compiled.ok()) << compiled.status();
    ExecutionResult result = RunJob(&compiled->graph, compiled->sink, options);
    CEP2ASP_CHECK(result.ok) << result.error;
    return test::MatchSet(compiled->sink->tuples());
  }

  EventTypeId a_ = 0, b_ = 0, c_ = 0;
  Workload workload_;
};

TEST_F(InvarianceTest, WatermarkIntervalDoesNotChangeFaspMatches) {
  Pattern p = Seq3();
  auto oracle = test::OracleMatchSet(p, workload_);
  ASSERT_FALSE(oracle.empty());
  for (int interval : {1, 7, 64, 1024, 100000}) {
    ExecutorOptions options;
    options.watermark_interval = interval;
    EXPECT_EQ(RunWithExecutorOptions(p, options), oracle)
        << "watermark_interval=" << interval;
  }
}

TEST_F(InvarianceTest, WatermarkIntervalDoesNotChangeNseqMatches) {
  // NSEQ has the most watermark-sensitive pipeline (the marking operator
  // holds events for a full window).
  Pattern p = Nseq();
  auto oracle = test::OracleMatchSet(p, workload_);
  for (int interval : {1, 13, 256, 4096}) {
    ExecutorOptions options;
    options.watermark_interval = interval;
    EXPECT_EQ(RunWithExecutorOptions(p, options), oracle)
        << "watermark_interval=" << interval;
  }
}

TEST_F(InvarianceTest, WatermarkIntervalDoesNotChangeFcepMatches) {
  Pattern p = Seq3();
  auto oracle = test::OracleMatchSet(p, workload_);
  for (int interval : {1, 17, 512}) {
    auto compiled = BuildCepJob(p, workload_.MakeSourceFactory());
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ExecutorOptions options;
    options.watermark_interval = interval;
    ExecutionResult result = RunJob(&compiled->graph, compiled->sink, options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(test::MatchSet(compiled->sink->tuples()), oracle)
        << "watermark_interval=" << interval;
  }
}

TEST_F(InvarianceTest, QueueCapacityDoesNotChangeThreadedMatches) {
  Pattern p = Seq3();
  auto oracle = test::OracleMatchSet(p, workload_);
  for (size_t capacity : {size_t{2}, size_t{64}, size_t{8192}}) {
    auto compiled = TranslatePattern(p, {}, workload_.MakeSourceFactory());
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ThreadedExecutorOptions options;
    options.queue_capacity = capacity;
    ThreadedExecutor executor(&compiled->graph, options);
    ExecutionResult result = executor.Run(compiled->sink);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(test::MatchSet(compiled->sink->tuples()), oracle)
        << "queue_capacity=" << capacity;
  }
}

TEST_F(InvarianceTest, BatchSizeDoesNotChangeThreadedMatches) {
  // The exchange batch size (and channel implementation) is an operational
  // knob of the threaded runtime: {1, 7, 64} must produce the exact same
  // MatchKey set as the single-threaded reference on all three paper
  // pattern shapes (SEQ, ITER, NSEQ). batch=1 reproduces the historical
  // one-message-per-push exchange.
  Predicate filter;
  filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 60));
  Pattern iter = PatternBuilder()
                     .Root(PatternBuilder::Iter(a_, "e", 3, filter))
                     .Within(6 * kMin)
                     .Build()
                     .ValueOrDie();
  struct Case {
    const char* name;
    Pattern pattern;
  };
  std::vector<Case> cases;
  cases.push_back({"SEQ", Seq3()});
  cases.push_back({"ITER", std::move(iter)});
  cases.push_back({"NSEQ", Nseq()});
  for (const Case& c : cases) {
    auto reference = RunWithExecutorOptions(c.pattern, ExecutorOptions{});
    ASSERT_FALSE(reference.empty()) << c.name;
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      auto compiled =
          TranslatePattern(c.pattern, {}, workload_.MakeSourceFactory());
      ASSERT_TRUE(compiled.ok()) << compiled.status();
      ThreadedExecutorOptions options;
      options.batch_size = batch;
      ThreadedExecutor executor(&compiled->graph, options);
      ExecutionResult result = executor.Run(compiled->sink);
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(test::MatchSet(compiled->sink->tuples()), reference)
          << c.name << " batch_size=" << batch;
    }
  }
}

TEST_F(InvarianceTest, ParallelismMatrixPreservesMatchMultisets) {
  // Keyed data parallelism is an operational knob: for every pattern shape
  // (SEQ, ITER, NSEQ) the threaded engine must reproduce the exact match
  // *multiset* — including the per-overlap duplicates the sliding
  // semantics prescribes — of the single-threaded reference, at every
  // (parallelism, batch_size) combination. Parallelism 4 over only two
  // sensor ids additionally exercises subtask instances that never
  // receive a tuple (they must still align watermarks and terminate).
  struct Case {
    const char* name;
    Pattern pattern;
  };
  std::vector<Case> cases;
  cases.push_back({"SEQ", Seq3Keyed()});
  cases.push_back({"ITER", Iter3Keyed()});
  cases.push_back({"NSEQ", NseqKeyed()});

  TranslatorOptions o3;
  o3.use_equi_join_keys = true;
  for (const Case& c : cases) {
    auto reference_job =
        TranslatePattern(c.pattern, o3, workload_.MakeSourceFactory());
    ASSERT_TRUE(reference_job.ok()) << reference_job.status();
    // End-of-stream watermarks only, in both engines. The raw emission
    // multiset of the NSEQ pipeline depends on the exact watermark step
    // sequence: the marking operator releases events a full window behind
    // the watermark, so every intermediate step changes which sliding
    // windows still see a released event downstream — and in the threaded
    // engine that step sequence is timing-dependent (min-alignment across
    // subtask slots can merge steps depending on queue interleaving). With
    // a single final watermark every window fires over the complete
    // buffers, so the multiset is the full per-overlap duplication in both
    // engines and the comparison isolates the parallelism knob. Set-level
    // equivalence across cadences is covered by the Watermark* tests.
    constexpr int kEndOfStreamOnly = 1 << 20;
    ExecutorOptions reference_options;
    reference_options.watermark_interval = kEndOfStreamOnly;
    ExecutionResult reference_run =
        RunJob(&reference_job->graph, reference_job->sink, reference_options);
    ASSERT_TRUE(reference_run.ok) << reference_run.error;
    auto reference = test::MatchMultiset(reference_job->sink->tuples());
    ASSERT_FALSE(reference.empty()) << c.name;

    for (int parallelism : {1, 2, 4}) {
      for (size_t batch : {size_t{1}, size_t{64}}) {
        for (bool chaining : {true, false}) {
          for (bool task_scheduler : {true, false}) {
            for (bool compile_exprs : {true, false}) {
              TranslatorOptions opt = o3;
              opt.parallelism = parallelism;
              opt.compile_expressions = compile_exprs;
              auto compiled = TranslatePattern(c.pattern, opt,
                                               workload_.MakeSourceFactory());
              ASSERT_TRUE(compiled.ok()) << compiled.status();
              ThreadedExecutorOptions options;
              options.batch_size = batch;
              options.watermark_interval = kEndOfStreamOnly;
              options.enable_chaining = chaining;
              options.use_task_scheduler = task_scheduler;
              ThreadedExecutor executor(&compiled->graph, options);
              ExecutionResult result = executor.Run(compiled->sink);
              ASSERT_TRUE(result.ok) << c.name << ": " << result.error;
              EXPECT_EQ(test::MatchMultiset(compiled->sink->tuples()),
                        reference)
                  << c.name << " parallelism=" << parallelism
                  << " batch_size=" << batch << " chaining=" << chaining
                  << " task_scheduler=" << task_scheduler
                  << " compile_exprs=" << compile_exprs;
              EXPECT_EQ(result.scheduler.used, task_scheduler) << c.name;
              if (parallelism > 1) {
                // The partitioned stages must actually have been expanded.
                EXPECT_FALSE(result.partition_skew.empty())
                    << c.name << " parallelism=" << parallelism;
              }
              if (chaining && (!compile_exprs || parallelism == 1)) {
                // The translated plans must contain at least one fusable
                // forward run — otherwise this axis tests nothing. With
                // compiled expressions at parallelism > 1 the filter→key
                // prefix is already one operator wedged between a source
                // edge and a hash edge, so no chainable edge remains —
                // the fusion subsumed what chaining used to buy there.
                const ChainLayout layout = ComputeChainLayout(compiled->graph);
                EXPECT_GT(layout.fused_edge_count(), 0)
                    << c.name << " parallelism=" << parallelism
                    << " compile_exprs=" << compile_exprs;
              }
            }
          }
        }
      }
    }
  }
}

TEST_F(InvarianceTest, ColumnarTransferPreservesMatchMultisets) {
  // The columnar (SoA) transfer path is an operational knob, not
  // semantics: with compiled expressions the source gathers tuples into
  // ColumnarBatch blocks, the compiled stateless prefix filters them
  // column-wise (SIMD kernels when built with CEP2ASP_SIMD), and the
  // blocks either scatter back to rows at the first row-major consumer or
  // — on hash edges into the SoA join — hash-partition into per-subtask
  // sub-blocks (PartitionByKey) that the join ingests column-wise. Match
  // multisets must be identical with the path forced off, for every
  // pattern shape, parallelism, chaining choice, both executor backends
  // (the task scheduler and the legacy thread-per-subtask path have
  // separate gather/forward wiring), and with block hash-partitioning
  // forced off (per-row scatter on hash edges).
  struct Case {
    const char* name;
    Pattern pattern;
  };
  std::vector<Case> cases;
  cases.push_back({"SEQ", Seq3Keyed()});
  cases.push_back({"ITER", Iter3Keyed()});
  cases.push_back({"NSEQ", NseqKeyed()});

  TranslatorOptions o3;
  o3.use_equi_join_keys = true;
  o3.compile_expressions = true;
  // End-of-stream watermarks only, for the same reason as the
  // parallelism matrix above: it isolates the knob under test.
  constexpr int kEndOfStreamOnly = 1 << 20;
  for (const Case& c : cases) {
    auto reference_job =
        TranslatePattern(c.pattern, o3, workload_.MakeSourceFactory());
    ASSERT_TRUE(reference_job.ok()) << reference_job.status();
    ExecutorOptions reference_options;
    reference_options.watermark_interval = kEndOfStreamOnly;
    ExecutionResult reference_run =
        RunJob(&reference_job->graph, reference_job->sink, reference_options);
    ASSERT_TRUE(reference_run.ok) << reference_run.error;
    auto reference = test::MatchMultiset(reference_job->sink->tuples());
    ASSERT_FALSE(reference.empty()) << c.name;

    for (int parallelism : {1, 4}) {
      for (bool chaining : {true, false}) {
        for (bool task_scheduler : {true, false}) {
          for (bool columnar : {true, false}) {
            for (bool columnar_hash : {true, false}) {
              // The hash-partition knob only matters when blocks flow.
              if (!columnar && !columnar_hash) continue;
              TranslatorOptions opt = o3;
              opt.parallelism = parallelism;
              auto compiled = TranslatePattern(c.pattern, opt,
                                               workload_.MakeSourceFactory());
              ASSERT_TRUE(compiled.ok()) << compiled.status();
              ThreadedExecutorOptions options;
              options.watermark_interval = kEndOfStreamOnly;
              options.enable_chaining = chaining;
              options.use_task_scheduler = task_scheduler;
              options.enable_columnar = columnar;
              options.columnar_hash_partition = columnar_hash;
              ThreadedExecutor executor(&compiled->graph, options);
              ExecutionResult result = executor.Run(compiled->sink);
              ASSERT_TRUE(result.ok) << c.name << ": " << result.error;
              EXPECT_EQ(test::MatchMultiset(compiled->sink->tuples()),
                        reference)
                  << c.name << " parallelism=" << parallelism
                  << " chaining=" << chaining
                  << " task_scheduler=" << task_scheduler
                  << " columnar=" << columnar
                  << " columnar_hash=" << columnar_hash;
            }
          }
        }
      }
    }
  }
}

TEST_F(InvarianceTest, StateSamplingDoesNotChangeResults) {
  Pattern p = Seq3();
  ExecutorOptions sampled;
  sampled.state_sample_interval = 64;
  sampled.watermark_interval = 32;
  ExecutorOptions unsampled;
  unsampled.state_sample_interval = 0;
  unsampled.watermark_interval = 32;
  EXPECT_EQ(RunWithExecutorOptions(p, sampled),
            RunWithExecutorOptions(p, unsampled));
}

TEST_F(InvarianceTest, InterleavedSourceOrderIrrelevantForO1) {
  // Interval-join plans are duplicate-free, so even raw emission counts
  // must be invariant to watermark cadence.
  Pattern p = Seq3();
  TranslatorOptions o1;
  o1.use_interval_join = true;
  std::vector<std::string> reference;
  for (int interval : {1, 50, 997}) {
    ExecutorOptions options;
    options.watermark_interval = interval;
    auto matches = RunWithExecutorOptions(p, options, o1);
    if (reference.empty()) reference = matches;
    EXPECT_EQ(matches, reference) << "watermark_interval=" << interval;
  }
}

}  // namespace
}  // namespace cep2asp
