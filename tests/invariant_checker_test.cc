#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariant_checker.h"
#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "runtime/job_graph.h"
#include "runtime/sink.h"
#include "runtime/vector_source.h"
#include "test_util.h"

namespace cep2asp {
namespace {

constexpr Timestamp kWin = 10000;
constexpr Timestamp kSlide = 1000;

Tuple Tup(Timestamp ts) { return Tuple(test::Ev(0, /*id=*/1, ts, 0.0)); }

InvariantChecker::Options NonFatal() {
  InvariantChecker::Options options;
  options.fatal = false;
  return options;
}

/// Operator that advertises drains_on_final_watermark and reports whatever
/// state size the test sets; lets the drainage check be exercised without a
/// real windowed pipeline.
class FakeDrainOp : public Operator {
 public:
  explicit FakeDrainOp(size_t state_bytes) : state_bytes_(state_bytes) {}

  std::string name() const override { return "fake-drain"; }
  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.drains_on_final_watermark = true;
    return traits;
  }
  Status Process(int, Tuple tuple, Collector* out) override {
    out->Emit(std::move(tuple));
    return Status::OK();
  }
  size_t StateBytes() const override { return state_bytes_; }

 private:
  size_t state_bytes_;
};

struct PipelineGraph {
  JobGraph graph;
  NodeId source = -1;
  NodeId op = -1;
  NodeId sink = -1;
};

PipelineGraph MakePipeline(std::unique_ptr<Operator> op) {
  PipelineGraph g;
  g.source = g.graph.AddSource(std::make_unique<VectorSource>(
      "src", std::vector<SimpleEvent>{}));
  g.op = g.graph.AddOperatorAfter(g.source, std::move(op));
  g.sink = g.graph.AddOperatorAfter(g.op, std::make_unique<CollectSink>());
  return g;
}

TEST(InvariantCheckerTest, InOrderTrafficIsClean) {
  PipelineGraph g = MakePipeline(std::make_unique<UnionOperator>(1));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnTuple(g.op, 0, Tup(10));
  checker.OnWatermark(g.op, 0, 100);
  checker.OnTuple(g.op, 0, Tup(150));
  checker.OnWatermark(g.op, 0, 200);
  checker.OnWatermark(g.op, 0, 200);  // equal watermark is not a regression
  checker.OnJobFinished();
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(InvariantCheckerTest, DetectsWatermarkRegression) {
  PipelineGraph g = MakePipeline(std::make_unique<UnionOperator>(1));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnWatermark(g.op, 0, 100);
  checker.OnWatermark(g.op, 0, 50);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("watermark regression"),
            std::string::npos)
      << checker.violations().front();
}

TEST(InvariantCheckerTest, DetectsStaleTuple) {
  PipelineGraph g = MakePipeline(std::make_unique<UnionOperator>(1));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnWatermark(g.op, 0, 1000);
  checker.OnTuple(g.op, 0, Tup(10));
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("stale tuple"),
            std::string::npos)
      << checker.violations().front();
}

TEST(InvariantCheckerTest, NoWatermarkMeansNoStaleness) {
  // Before the first watermark there is no reference point.
  PipelineGraph g = MakePipeline(std::make_unique<UnionOperator>(1));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnTuple(g.op, 0, Tup(10));
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantCheckerTest, FinalWatermarkAllowsDrainedTuples) {
  // After the kMaxTimestamp watermark, operators flush buffered windows
  // whose event times lie arbitrarily far behind.
  PipelineGraph g = MakePipeline(std::make_unique<UnionOperator>(1));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnWatermark(g.op, 0, kMaxTimestamp);
  checker.OnTuple(g.op, 0, Tup(10));
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantCheckerTest, SlackAccumulatesBelowWindowedOperators) {
  // src -> key -> join(window kWin) -> sink: the join may emit results up
  // to one window span behind its input watermark, so the sink tolerates
  // exactly that lag and no more.
  JobGraph graph;
  NodeId s1 = graph.AddSource(
      std::make_unique<VectorSource>("s1", std::vector<SimpleEvent>{}));
  NodeId s2 = graph.AddSource(
      std::make_unique<VectorSource>("s2", std::vector<SimpleEvent>{}));
  NodeId k1 = graph.AddOperatorAfter(s1, MapOperator::AssignConstantKey(0));
  NodeId k2 = graph.AddOperatorAfter(s2, MapOperator::AssignConstantKey(0));
  NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{kWin, kSlide}, Predicate(), TimestampMode::kMax));
  ASSERT_TRUE(graph.Connect(k1, join, 0).ok());
  ASSERT_TRUE(graph.Connect(k2, join, 1).ok());
  NodeId sink = graph.AddOperatorAfter(join, std::make_unique<CollectSink>());

  InvariantChecker checker(graph, NonFatal());
  EXPECT_EQ(checker.LatenessSlack(join), 0);
  EXPECT_EQ(checker.LatenessSlack(sink), kWin);

  // A join result lagging the watermark by less than the window is fine...
  checker.OnWatermark(sink, 0, 2 * kWin);
  checker.OnTuple(sink, 0, Tup(2 * kWin - kWin));
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  // ...but beyond the slack it is stale even at the sink.
  checker.OnTuple(sink, 0, Tup(2 * kWin - kWin - 1));
  EXPECT_FALSE(checker.ok());
}

TEST(InvariantCheckerTest, DetectsUndrainedState) {
  PipelineGraph g = MakePipeline(std::make_unique<FakeDrainOp>(128));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnJobFinished();
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("undrained state"),
            std::string::npos)
      << checker.violations().front();
}

TEST(InvariantCheckerTest, DrainedStateIsClean) {
  PipelineGraph g = MakePipeline(std::make_unique<FakeDrainOp>(0));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnJobFinished();
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantCheckerTest, ViolationsAccumulate) {
  PipelineGraph g = MakePipeline(std::make_unique<UnionOperator>(1));
  InvariantChecker checker(g.graph, NonFatal());
  checker.OnWatermark(g.op, 0, 100);
  checker.OnWatermark(g.op, 0, 50);
  checker.OnTuple(g.op, 0, Tup(1));
  EXPECT_EQ(checker.violations().size(), 2u);
}

}  // namespace
}  // namespace cep2asp
