#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "translator/logical_plan.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp {
namespace {

using test::Ev;

constexpr Timestamp kMin = kMillisPerMinute;

/// Fixture providing three small synthetic streams (same-id events so the
/// default uniform-key path behaves like the paper's single-node setup).
class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = EventTypeRegistry::Global()->RegisterOrGet("TrA");
    b_ = EventTypeRegistry::Global()->RegisterOrGet("TrB");
    c_ = EventTypeRegistry::Global()->RegisterOrGet("TrC");
  }

  /// A deterministic pseudo-random workload: per-type streams with 1-min
  /// period, values uniform in [0,100), sensors -> keys.
  Workload MakeWorkload(int rounds, int sensors = 1, uint64_t seed = 7) {
    Workload w;
    for (EventTypeId type : {a_, b_, c_}) {
      StreamSpec spec;
      spec.type = type;
      spec.num_sensors = sensors;
      spec.events_per_sensor = rounds;
      spec.period = kMin;
      spec.seed = seed + type;
      w.AddStream(spec);
    }
    return w;
  }

  Pattern SeqAB(Predicate a_filter = {}, Predicate b_filter = {},
                Timestamp w = 5 * kMin) {
    return PatternBuilder()
        .Seq(PatternBuilder::Atom(a_, "e1", std::move(a_filter)),
             PatternBuilder::Atom(b_, "e2", std::move(b_filter)))
        .Within(w)
        .Build()
        .ValueOrDie();
  }

  EventTypeId a_ = 0, b_ = 0, c_ = 0;
};

// --- Logical plan shapes (Table 1) ------------------------------------------------

TEST_F(TranslatorTest, SeqMapsToThetaJoin) {
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(SeqAB()).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kWindowJoin), 1);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kScan), 2);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByConst), 2);
  // The theta condition (ts order) lives on the join.
  EXPECT_FALSE(plan.root->predicate.IsTrue());
  EXPECT_EQ(plan.root->ts_mode, TimestampMode::kMax);
}

TEST_F(TranslatorTest, AndMapsToCrossJoinWithUniformKey) {
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->kind, LogicalOpKind::kWindowJoin);
  EXPECT_TRUE(plan.root->predicate.IsTrue());  // pure Cartesian product
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByConst), 2);
}

TEST_F(TranslatorTest, OrMapsToUnion) {
  Pattern p = PatternBuilder()
                  .Or(PatternBuilder::Atom(a_, "e1"),
                      PatternBuilder::Atom(b_, "e2"))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->kind, LogicalOpKind::kUnion);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kWindowJoin), 0);
}

TEST_F(TranslatorTest, IterMapsToSelfJoinChain) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 4))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  // ITER^m -> m-1 self theta joins over m scans.
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kWindowJoin), 3);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kScan), 4);
}

TEST_F(TranslatorTest, IterWithO2MapsToAggregate) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 4))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  TranslatorOptions options;
  options.use_aggregation_for_iter = true;
  Translator translator(options);
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->kind, LogicalOpKind::kAggregate);
  EXPECT_EQ(plan.root->min_count, 4);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kWindowJoin), 0);
}

TEST_F(TranslatorTest, ConstrainedIterWithO2UsesChainApply) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Predicate(),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  TranslatorOptions options;
  options.use_aggregation_for_iter = true;
  Translator translator(options);
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->kind, LogicalOpKind::kIterChainApply);
}

TEST_F(TranslatorTest, NseqMapsToUnionMarkJoin) {
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kNseqMark), 1);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kUnion), 1);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kWindowJoin), 1);
}

TEST_F(TranslatorTest, O1ReplacesWindowJoinsWithIntervalJoins) {
  TranslatorOptions options;
  options.use_interval_join = true;
  Translator translator(options);
  LogicalPlan plan = translator.ToLogicalPlan(SeqAB()).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kIntervalJoin), 1);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kWindowJoin), 0);
  EXPECT_EQ(plan.root->interval.lower, 0);
  EXPECT_EQ(plan.root->interval.upper, 5 * kMin);
}

TEST_F(TranslatorTest, O3ExtractsEquiJoinKey) {
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                              {1, Attribute::kId}))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  TranslatorOptions options;
  options.use_equi_join_keys = true;
  Translator translator(options);
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByAttr), 2);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByConst), 0);
}

TEST_F(TranslatorTest, O3WithoutConnectingEqualityFallsBack) {
  TranslatorOptions options;
  options.use_equi_join_keys = true;
  Translator translator(options);
  LogicalPlan plan = translator.ToLogicalPlan(SeqAB()).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByConst), 2);
}

TEST_F(TranslatorTest, FilterPushdown) {
  Predicate filter;
  filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 50));
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(SeqAB(filter)).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kFilter), 1);
}

// --- End-to-end equivalence: FASP == FCEP == SEA oracle --------------------------

struct EquivalenceCase {
  std::string name;
  bool o1 = false;
  bool o2 = false;
  bool o3 = false;
};

class SeqEquivalenceTest : public TranslatorTest,
                           public ::testing::WithParamInterface<EquivalenceCase> {};

TEST_P(SeqEquivalenceTest, SeqMatchesOracleAndFcep) {
  const EquivalenceCase& param = GetParam();
  Workload w = MakeWorkload(/*rounds=*/60);
  Predicate a_filter, b_filter;
  a_filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 40));
  b_filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 40));
  Pattern p = SeqAB(a_filter, b_filter);

  TranslatorOptions options;
  options.use_interval_join = param.o1;
  options.use_equi_join_keys = param.o3;
  auto fasp = test::RunFasp(p, w, options);
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;

  auto oracle = test::OracleMatchSet(p, w);
  EXPECT_EQ(fasp.match_set, oracle);

  auto fcep = test::RunFcep(p, w);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Options, SeqEquivalenceTest,
    ::testing::Values(EquivalenceCase{"baseline"},
                      EquivalenceCase{"o1", true, false, false}),
    [](const auto& info) { return info.param.name; });

TEST_F(TranslatorTest, SeqThreeTypesEquivalence) {
  Workload w = MakeWorkload(40);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 50));
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1", f),
                       PatternBuilder::Atom(b_, "e2", f),
                       PatternBuilder::Atom(c_, "e3", f))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  auto fasp = test::RunFasp(p, w, {});
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.match_set, oracle);
  auto fcep = test::RunFcep(p, w);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);

  TranslatorOptions o1;
  o1.use_interval_join = true;
  auto fasp_o1 = test::RunFasp(p, w, o1);
  ASSERT_TRUE(fasp_o1.result.ok) << fasp_o1.result.error;
  EXPECT_EQ(fasp_o1.match_set, oracle);
}

TEST_F(TranslatorTest, AndEquivalenceWithOracle) {
  // FCEP cannot express AND (Table 2); FASP vs oracle only. The match set
  // is compared order-insensitively because AND is commutative.
  Workload w = MakeWorkload(30);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 30));
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1", f),
                       PatternBuilder::Atom(b_, "e2", f))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  for (bool o1 : {false, true}) {
    TranslatorOptions options;
    options.use_interval_join = o1;
    auto fasp = test::RunFasp(p, w, options);
    ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
    EXPECT_EQ(fasp.match_set, oracle) << "o1=" << o1;
  }
}

TEST_F(TranslatorTest, TernaryAndEquivalence) {
  // Composite left side: pairwise window constraints survive as
  // predicates (§4 mapping detail).
  Workload w = MakeWorkload(25);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 25));
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1", f),
                       PatternBuilder::Atom(b_, "e2", f),
                       PatternBuilder::Atom(c_, "e3", f))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  for (bool o1 : {false, true}) {
    TranslatorOptions options;
    options.use_interval_join = o1;
    auto fasp = test::RunFasp(p, w, options);
    ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
    EXPECT_EQ(fasp.match_set, oracle) << "o1=" << o1;
  }
}

TEST_F(TranslatorTest, OrEquivalence) {
  Workload w = MakeWorkload(30);
  Pattern p = PatternBuilder()
                  .Or(PatternBuilder::Atom(a_, "e1"),
                      PatternBuilder::Atom(b_, "e2"))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  auto fasp = test::RunFasp(p, w, {});
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.match_set, oracle);
  // FCEP rejects OR.
  auto fcep = test::RunFcep(p, w);
  EXPECT_FALSE(fcep.result.ok);
}

TEST_F(TranslatorTest, IterEquivalence) {
  Workload w = MakeWorkload(40);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 35));
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 3, f))
                  .Within(6 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  for (bool o1 : {false, true}) {
    TranslatorOptions options;
    options.use_interval_join = o1;
    auto fasp = test::RunFasp(p, w, options);
    ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
    EXPECT_EQ(fasp.match_set, oracle) << "o1=" << o1;
  }
  auto fcep = test::RunFcep(p, w);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

TEST_F(TranslatorTest, IterConsecutiveConstraintEquivalence) {
  Workload w = MakeWorkload(40);
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Predicate(),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  auto fasp = test::RunFasp(p, w, {});
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.match_set, oracle);
  auto fcep = test::RunFcep(p, w);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

TEST_F(TranslatorTest, O2AggregateFiresIffOracleIterNonEmpty) {
  // O2 is approximate: one output tuple per qualifying window instead of
  // event combinations. Its windows with >= m events must coincide with
  // windows where the oracle finds ITER^m matches.
  Workload w = MakeWorkload(50);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 30));
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 3, f))
                  .Within(6 * kMin)
                  .Build()
                  .ValueOrDie();
  TranslatorOptions options;
  options.use_aggregation_for_iter = true;
  auto fasp = test::RunFasp(p, w, options);
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  auto oracle = test::OracleMatchSet(p, w);
  if (oracle.empty()) {
    EXPECT_TRUE(fasp.match_set.empty());
  } else {
    EXPECT_FALSE(fasp.match_set.empty());
  }
}

TEST_F(TranslatorTest, NseqEquivalence) {
  Workload w = MakeWorkload(50);
  Predicate b_filter;
  b_filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 20));
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", b_filter}, {c_, "e3", {}})
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  for (bool o1 : {false, true}) {
    TranslatorOptions options;
    options.use_interval_join = o1;
    auto fasp = test::RunFasp(p, w, options);
    ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
    EXPECT_EQ(fasp.match_set, oracle) << "o1=" << o1;
  }
  auto fcep = test::RunFcep(p, w);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

TEST_F(TranslatorTest, KeyedEquivalenceWithO3) {
  // Multi-sensor workload keyed by id (Fig. 4 style).
  Workload w = MakeWorkload(30, /*sensors=*/4);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 60));
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1", f),
                       PatternBuilder::Atom(b_, "e2", f))
                  .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                              {1, Attribute::kId}))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  p.set_slide(kMin / 4);  // slide <= stagger for Theorem 2

  auto oracle = test::OracleMatchSet(p, w);
  ASSERT_FALSE(oracle.empty());
  for (bool o1 : {false, true}) {
    TranslatorOptions options;
    options.use_equi_join_keys = true;
    options.use_interval_join = o1;
    auto fasp = test::RunFasp(p, w, options);
    ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
    EXPECT_EQ(fasp.match_set, oracle) << "o1=" << o1;
  }
  CepJobOptions cep_options;
  cep_options.keyed = true;
  auto fcep = test::RunFcep(p, w, cep_options);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

TEST_F(TranslatorTest, CrossPredicateEquivalence) {
  // Listing 2 style: SEQ with a cross-variable value predicate.
  Workload w = MakeWorkload(60);
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
                                              {1, Attribute::kValue}))
                  .Within(3 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  auto fasp = test::RunFasp(p, w, {});
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.match_set, oracle);
  auto fcep = test::RunFcep(p, w);
  ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
  EXPECT_EQ(fcep.match_set, oracle);
}

TEST_F(TranslatorTest, DedupStageRemovesSlidingDuplicates) {
  Workload w = MakeWorkload(40);
  Pattern p = SeqAB();
  TranslatorOptions plain;
  auto raw = test::RunFasp(p, w, plain);
  TranslatorOptions dedup = plain;
  dedup.deduplicate_output = true;
  auto deduped = test::RunFasp(p, w, dedup);
  ASSERT_TRUE(raw.result.ok);
  ASSERT_TRUE(deduped.result.ok);
  EXPECT_EQ(raw.match_set, deduped.match_set);
  EXPECT_EQ(deduped.raw_emissions,
            static_cast<int64_t>(deduped.match_set.size()));
  EXPECT_GT(raw.raw_emissions, deduped.raw_emissions);
}

TEST_F(TranslatorTest, IntervalJoinPlanEmitsNoDuplicates) {
  Workload w = MakeWorkload(40);
  Pattern p = SeqAB();
  TranslatorOptions options;
  options.use_interval_join = true;
  auto fasp = test::RunFasp(p, w, options);
  ASSERT_TRUE(fasp.result.ok);
  EXPECT_EQ(fasp.raw_emissions, static_cast<int64_t>(fasp.match_set.size()));
}

TEST_F(TranslatorTest, AutoOptimizeProducesEquivalentResults) {
  Workload w = MakeWorkload(30);
  Predicate f;
  f.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 40));
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1", f),
                       PatternBuilder::Atom(b_, "e2", f))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  auto oracle = test::OracleMatchSet(p, w);
  TranslatorOptions options;
  options.auto_optimize = true;
  // AND matches are order-insensitive; auto reordering may permute the
  // variables before the final Reorder restores match positions.
  auto fasp = test::RunFasp(p, w, options);
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.match_set, oracle);
}

TEST_F(TranslatorTest, MissingSourceReported) {
  Pattern p = SeqAB();
  auto compiled = TranslatePattern(
      p, {}, [](EventTypeId) -> std::unique_ptr<Source> { return nullptr; });
  EXPECT_FALSE(compiled.ok());
  EXPECT_TRUE(compiled.status().IsNotFound());
}

}  // namespace
}  // namespace cep2asp
