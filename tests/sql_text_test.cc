#include <gtest/gtest.h>

#include "runtime/executor.h"
#include "runtime/rate_limited_source.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"
#include "translator/sql_text.h"
#include "translator/translator.h"

namespace cep2asp {
namespace {

using test::Ev;

constexpr Timestamp kMin = kMillisPerMinute;

class SqlTextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = EventTypeRegistry::Global()->RegisterOrGet("SqlA");
    b_ = EventTypeRegistry::Global()->RegisterOrGet("SqlB");
    c_ = EventTypeRegistry::Global()->RegisterOrGet("SqlC");
  }

  EventTypeId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(SqlTextTest, SeqRendersThetaJoin) {
  // Listing 8 shape: FROM all streams, consecutive ts predicates, window.
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"),
                       PatternBuilder::Atom(c_, "e3"))
                  .Within(15 * kMin)
                  .Build()
                  .ValueOrDie();
  std::string sql = RenderSqlQuery(p).ValueOrDie();
  EXPECT_NE(sql.find("FROM Stream SqlA e1, Stream SqlB e2, Stream SqlC e3"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("e1.ts < e2.ts"), std::string::npos);
  EXPECT_NE(sql.find("e2.ts < e3.ts"), std::string::npos);
  EXPECT_NE(sql.find("WINDOW [Range 15min"), std::string::npos);
}

TEST_F(SqlTextTest, FiltersAndCrossPredicatesRendered) {
  Predicate filter;
  filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLe, 10));
  Pattern p = PatternBuilder()
                  .Seq(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2", filter))
                  .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
                                              {1, Attribute::kValue}))
                  .Within(4 * kMin)
                  .Build()
                  .ValueOrDie();
  std::string sql = RenderSqlQuery(p).ValueOrDie();
  EXPECT_NE(sql.find("e2.value <= 10"), std::string::npos) << sql;
  EXPECT_NE(sql.find("e1.value <= e2.value"), std::string::npos) << sql;
}

TEST_F(SqlTextTest, NseqRendersNotExists) {
  // Listing 6 shape.
  Pattern p = PatternBuilder()
                  .Nseq({a_, "e1", {}}, {b_, "e2", {}}, {c_, "e3", {}})
                  .Within(10 * kMin)
                  .Build()
                  .ValueOrDie();
  std::string sql = RenderSqlQuery(p).ValueOrDie();
  EXPECT_NE(sql.find("NOT EXISTS (SELECT * FROM Stream SqlB e2"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("e1.ts < e2.ts"), std::string::npos);
  EXPECT_NE(sql.find("e2.ts < e3.ts"), std::string::npos);
  // The outer query joins T1 and T3 only.
  EXPECT_NE(sql.find("FROM Stream SqlA e1, Stream SqlC e3"), std::string::npos);
}

TEST_F(SqlTextTest, OrRendersUnion) {
  Pattern p = PatternBuilder()
                  .Or(PatternBuilder::Atom(a_, "x"),
                      PatternBuilder::Atom(b_, "y"))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  std::string sql = RenderSqlQuery(p).ValueOrDie();
  EXPECT_NE(sql.find("UNION"), std::string::npos) << sql;
  EXPECT_NE(sql.find("Stream SqlA"), std::string::npos);
  EXPECT_NE(sql.find("Stream SqlB"), std::string::npos);
}

TEST_F(SqlTextTest, IterRendersSelfJoins) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(
                      a_, "v", 3, Predicate(),
                      ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
                  .Within(15 * kMin)
                  .Build()
                  .ValueOrDie();
  std::string sql = RenderSqlQuery(p).ValueOrDie();
  EXPECT_NE(sql.find("Stream SqlA v1, Stream SqlA v2, Stream SqlA v3"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("v1.value < v2.value"), std::string::npos);
  EXPECT_NE(sql.find("v1.ts < v2.ts"), std::string::npos);
}

TEST_F(SqlTextTest, ConjunctionHasNoOrderPredicate) {
  Pattern p = PatternBuilder()
                  .And(PatternBuilder::Atom(a_, "e1"),
                       PatternBuilder::Atom(b_, "e2"))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  std::string sql = RenderSqlQuery(p).ValueOrDie();
  EXPECT_EQ(sql.find(".ts <"), std::string::npos) << sql;
  EXPECT_NE(sql.find("FROM Stream SqlA e1, Stream SqlB e2"), std::string::npos);
}

// --- Unbounded iterations (Kleene+) -------------------------------------------

TEST_F(SqlTextTest, UnboundedIterRequiresO2) {
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 2, Predicate(),
                                             std::nullopt, /*unbounded=*/true))
                  .Within(5 * kMin)
                  .Build()
                  .ValueOrDie();
  Translator plain;
  EXPECT_TRUE(plain.ToLogicalPlan(p).status().IsUnimplemented());

  TranslatorOptions o2;
  o2.use_aggregation_for_iter = true;
  Translator with_o2(o2);
  LogicalPlan plan = with_o2.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->kind, LogicalOpKind::kAggregate);
  EXPECT_EQ(plan.root->min_count, 2);
}

TEST_F(SqlTextTest, UnboundedIterFiresOnCountAtLeastM) {
  // Kleene+ variant under skip-till-any-match: the window fires iff it
  // holds >= m qualifying events (§4.3.2).
  Pattern p = PatternBuilder()
                  .Root(PatternBuilder::Iter(a_, "v", 3, Predicate(),
                                             std::nullopt, /*unbounded=*/true))
                  .Within(5 * kMin)
                  .SlideBy(5 * kMin)
                  .Build()
                  .ValueOrDie();
  Workload w;
  // Window [0, 5min): 4 events (>= 3, fires); window [5, 10min): 2 events.
  w.AddEvents(a_, {Ev(a_, 1, 0, 1), Ev(a_, 1, kMin, 1), Ev(a_, 1, 2 * kMin, 1),
                   Ev(a_, 1, 3 * kMin, 1), Ev(a_, 1, 6 * kMin, 1),
                   Ev(a_, 1, 7 * kMin, 1)});
  TranslatorOptions o2;
  o2.use_aggregation_for_iter = true;
  auto fasp = test::RunFasp(p, w, o2);
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.raw_emissions, 1);
}

// --- RateLimitedSource ---------------------------------------------------------

TEST(RateLimitedSourceTest, PacesEmission) {
  std::vector<SimpleEvent> events;
  for (int i = 0; i < 500; ++i) events.push_back(Ev(0, 1, i, 0));
  auto source = std::make_unique<RateLimitedSource>(
      std::make_unique<VectorSource>("s", events), /*tuples_per_second=*/5000);
  SystemClock* clock = SystemClock::Get();
  int64_t begin = clock->NowNanos();
  Tuple t;
  int count = 0;
  while (source->Next(&t)) ++count;
  double elapsed_s = static_cast<double>(clock->NowNanos() - begin) / 1e9;
  EXPECT_EQ(count, 500);
  // 500 tuples at 5k/s ~ 0.1 s (allow generous slack for sleep jitter).
  EXPECT_GE(elapsed_s, 0.08);
  EXPECT_LT(elapsed_s, 0.5);
}

TEST(RateLimitedSourceTest, ForwardsWatermarks) {
  std::vector<SimpleEvent> events = {Ev(0, 1, 100, 0), Ev(0, 1, 200, 0)};
  RateLimitedSource source(std::make_unique<VectorSource>("s", events), 1e9);
  Tuple t;
  ASSERT_TRUE(source.Next(&t));
  EXPECT_EQ(source.CurrentWatermark(), 100);
  ASSERT_TRUE(source.Next(&t));
  EXPECT_EQ(source.CurrentWatermark(), 200);
  EXPECT_FALSE(source.Next(&t));
  EXPECT_EQ(source.emitted(), 2);
}

}  // namespace
}  // namespace cep2asp
